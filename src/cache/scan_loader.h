// CachedScanLoader: serve a pinned dataset's records as loader chunks, plus
// the publish/consume helpers that connect DatasetCache to flowlet graphs.
//
// Reading a cached dataset costs zero disk reads and zero deserialization:
// load_chunk() walks the shard's resident blocks with a ShardCursor and
// emits string_views sliced straight out of the pinned buffers (the engine
// copies them into bins, exactly as it does for any emit).
//
// Publishing rides on EdgeOptions::tap: publish_tap(base, writer) returns
// the edge options with a sender-side tap that appends each routed record
// to the writer shard of its *destination* node - so the dataset's shard
// layout is byte-for-byte the routing of the producing edge, which is what
// makes the stable-partitioning contract (aligned_edge) sound.
#pragma once

#include <memory>
#include <vector>

#include "cache/dataset_cache.h"
#include "engine/graph.h"
#include "engine/loaders.h"
#include "engine/split.h"

namespace hamr::cache {

// Loader over a pinned dataset: one split per node (see add_scan_splits),
// each walking that node's shard. The pin handle is held by the loader, so
// the dataset stays resident for the life of the job even if it is
// invalidated or evicted from the cache concurrently.
class CachedScanLoader : public engine::LoaderFlowlet {
 public:
  explicit CachedScanLoader(std::shared_ptr<const Dataset> dataset,
                            uint64_t records_per_chunk = 2048)
      : dataset_(std::move(dataset)),
        records_per_chunk_(records_per_chunk == 0 ? 1 : records_per_chunk) {}

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override;

 private:
  std::shared_ptr<const Dataset> dataset_;
  const uint64_t records_per_chunk_;
};

// Appends one synthetic split per dataset shard: path "cache://<name>",
// preferred_node = shard index, user_tag = shard index. Placement
// inheritance: each shard is scanned on the node where its records already
// reside, so a cached scan moves zero bytes before the first edge.
void add_scan_splits(engine::JobInputs* inputs, engine::FlowletId loader,
                     const Dataset& dataset);

// Edge options for consuming a cached scan downstream with the shuffle
// skipped when it is provably safe: key_partitioned datasets scan each key
// on its owning node already, so a local edge reproduces the key-routed
// placement with zero network traffic. Datasets published with a custom
// partitioner inherit it; anything else falls back to the default key hash.
engine::EdgeOptions aligned_edge(const Dataset& dataset);

// Returns `base` with a tap that publishes every record routed over the
// edge into `writer`, sharded by destination node. Taps fire sender-side
// after routing, exactly once per emitted record (task crashes are injected
// before flowlet code runs, and the reliable channel dedups delivered
// bins), so the published dataset matches the delivered stream. Not valid
// on combine edges (validate() rejects the combination: combined records
// are folded before routing, so there is no per-record destination).
engine::EdgeOptions publish_tap(engine::EdgeOptions base,
                                std::shared_ptr<DatasetWriter> writer);

}  // namespace hamr::cache
