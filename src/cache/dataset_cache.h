// DatasetCache: M3R-style cross-job, node-resident dataset cache with a
// stable-partitioning contract (DESIGN.md §15).
//
// Every JobService lane used to treat each job as cold: iterative chains
// (PageRank, KMeans, chained query stages) reloaded their input shards from
// storage and reshuffled identical partitions on every iteration. The cache
// keeps a job's published records memory-resident across jobs:
//
//   * Datasets are named, immutable once committed, and keyed by a
//     monotonically increasing generation. A writer builds the next
//     generation shard-by-shard (framed records in pooled block buffers);
//     commit() publishes it atomically, abort() discards it.
//   * Shards are per node. A dataset remembers *how* its records were routed
//     to shards (the producing edge's partitioner, or "partitioned by key
//     hash"), so a consuming job can inherit the partitioner and placement
//     verbatim - scan splits pin to the shard's node and partition-aligned
//     downstream stages skip the shuffle entirely (aligned_edge()).
//   * Readers pin() a dataset: the returned handle is a ref-counted lease
//     that keeps the generation resident (never evicted) until released.
//     A miss returns null and the caller falls back to a cold load.
//   * Residency is budgeted against lane memory: committing past the byte
//     budget evicts unpinned datasets in LRU order. invalidate() removes a
//     name outright (the JobService calls it when a publishing job fails).
//
// Observability: cache.bytes_resident / cache.hit_rate gauges and
// cache.{hits,misses,evictions,invalidations} counters on node 0's registry
// (captured into JobResult::metrics like every node counter), plus
// kDatasetPin / kDatasetEvict EventLog records.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "common/pool.h"
#include "obs/event_log.h"

namespace hamr::cache {

// (key, num_nodes) -> shard/node index; same signature as
// engine::EdgeOptions::partitioner. Must be deterministic and identical on
// every node.
using Partitioner = std::function<uint32_t(std::string_view, uint32_t)>;

// How a dataset's records were distributed across shards at publish time.
struct PublishOptions {
  // Custom partitioner the producing edge routed by (null = default key
  // hash, or no key-based placement at all - see key_partitioned).
  Partitioner partitioner;
  // True when shard n holds exactly the keys that partition to node n
  // (key-routed shuffle edges, reduce outputs). Enables the local-edge
  // shuffle skip for consumers keyed the same way.
  bool key_partitioned = false;
  // Caller-defined stamp (e.g. source row count or content hash). pin() with
  // a non-zero expected stamp treats a mismatch as a miss, guarding against
  // a stale dataset after its source changed.
  uint64_t stamp = 0;
};

// An immutable, committed dataset generation. Reachable only through pin()
// handles (and the writer that built it); safe to read from any thread.
class Dataset {
 public:
  // One node's shard: framed records packed into pooled block buffers.
  // Record layout within a block: (varint key_len | key | varint value_len |
  // value)*. Blocks are immutable; readers slice string_views out of them.
  struct Shard {
    std::vector<std::shared_ptr<const std::string>> blocks;
    uint64_t bytes = 0;
    uint64_t records = 0;
  };

  const std::string& name() const { return name_; }
  uint64_t generation() const { return generation_; }
  uint32_t nodes() const { return static_cast<uint32_t>(shards_.size()); }
  const Shard& shard(uint32_t node) const { return shards_.at(node); }
  const PublishOptions& options() const { return options_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_records() const { return total_records_; }

 private:
  friend class DatasetCache;
  friend class DatasetWriter;

  std::string name_;
  uint64_t generation_ = 0;
  PublishOptions options_;
  std::vector<Shard> shards_;
  uint64_t total_bytes_ = 0;
  uint64_t total_records_ = 0;
};

// Cursor-based walk over one shard's framed records. The views point into
// the shard's pinned blocks (valid for the life of the pin). `cursor` packs
// (block index << 40 | byte offset) so loaders can persist it in the
// engine's per-split uint64_t cursor.
struct ShardCursor {
  static constexpr uint64_t kPosBits = 40;
  uint64_t packed = 0;

  uint64_t block() const { return packed >> kPosBits; }
  uint64_t pos() const { return packed & ((uint64_t{1} << kPosBits) - 1); }
  void set(uint64_t block, uint64_t pos) {
    packed = (block << kPosBits) | pos;
  }
};

// Decodes the next record; returns false at end of shard. Throws
// serde::DecodeError on a corrupt block (cache corruption is a bug).
bool next_record(const Dataset::Shard& shard, ShardCursor* cursor,
                 std::string_view* key, std::string_view* value);

class DatasetCache;

// Builder for the next generation of one dataset. append() is thread-safe
// (per-shard locking) and callable from any node's worker threads - the
// usual producers are flowlet bodies and EdgeOptions taps. The generation
// becomes visible only on DatasetCache::commit(); a writer dropped without
// commit leaves the cache untouched.
class DatasetWriter {
 public:
  const std::string& name() const { return name_; }
  uint64_t generation() const { return generation_; }

  void append(uint32_t node, std::string_view key, std::string_view value);

  // Convenience forwards to the owning cache (it must outlive the writer).
  bool commit();
  void abort();

 private:
  friend class DatasetCache;

  DatasetWriter(DatasetCache* cache, std::string name, uint64_t generation,
                PublishOptions options, uint32_t nodes);

  struct ShardBuilder {
    std::mutex mu;
    std::string open_block;  // pooled buffer under construction
    Dataset::Shard shard;
  };
  void seal_block(ShardBuilder& b);

  DatasetCache* cache_;
  std::string name_;
  uint64_t generation_;
  PublishOptions options_;
  std::vector<std::unique_ptr<ShardBuilder>> shards_;
};

class DatasetCache {
 public:
  struct Config {
    // Byte budget for resident (committed) datasets, typically carved from
    // the lane memory budget (e.g. EngineConfig::memory_budget_bytes / 4).
    // Pinned datasets are leases and may transiently overshoot it; eviction
    // only considers unpinned entries.
    uint64_t byte_budget = 16ull * 1024 * 1024;
    // Target packed size of one record block.
    uint64_t block_bytes = 256 * 1024;
    // Optional event log (not owned): kDatasetPin / kDatasetEvict.
    obs::EventLog* event_log = nullptr;
  };

  // Two overloads instead of `Config config = {}`: a nested class's default
  // member initializers cannot appear in a default argument before the
  // enclosing class is complete.
  explicit DatasetCache(cluster::Cluster& cluster);
  DatasetCache(cluster::Cluster& cluster, Config config);
  ~DatasetCache();

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  // Starts building the next generation of `name`. Concurrent writers for
  // one name are allowed; the last commit wins.
  std::shared_ptr<DatasetWriter> begin(const std::string& name,
                                       PublishOptions options = {});

  // Publishes the writer's generation, replacing any previous generation of
  // the name, then evicts unpinned LRU entries until the resident bytes fit
  // the budget (the newly committed dataset is evicted last). Returns false
  // (and discards the data) when the name was invalidated after begin().
  bool commit(const std::shared_ptr<DatasetWriter>& writer);

  // Discards an uncommitted generation and counts an invalidation (the
  // failure path: the JobService aborts a failed job's writers).
  void abort(const std::shared_ptr<DatasetWriter>& writer);

  // Ref-counted read lease on the current generation; null on miss. The
  // dataset stays resident until every pin handle is released. When
  // `expected_stamp` is non-zero, a resident generation with a different
  // PublishOptions::stamp counts as a miss (stale source guard).
  std::shared_ptr<const Dataset> pin(const std::string& name,
                                     uint64_t expected_stamp = 0);

  // Drops the current generation of `name` (outstanding pins keep reading
  // their snapshot; new pins miss) and fences in-flight writers begun before
  // this call: their commit() will fail. No-op for unknown names.
  void invalidate(const std::string& name);

  uint64_t bytes_resident() const;
  uint64_t byte_budget() const { return config_.byte_budget; }
  obs::EventLog* event_log() const { return config_.event_log; }

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };
  Stats stats() const;

 private:
  friend class DatasetWriter;

  struct Entry {
    std::shared_ptr<Dataset> data;
    uint64_t pins = 0;
    // Position in lru_ (valid when pins == 0 and resident).
    std::list<std::string>::iterator lru_it;
    bool in_lru = false;
    // Writers begun before an invalidate() must not commit over it.
    uint64_t min_commit_generation = 0;
  };

  bool commit_writer(DatasetWriter* writer);
  void abort_writer(DatasetWriter* writer);
  void release_pin(const std::string& name, uint64_t generation);
  void evict_to_budget_locked(const std::string& keep);
  void drop_entry_locked(const std::string& name, Entry& entry);
  void touch_locked(const std::string& name, Entry& entry);
  void update_gauges_locked();
  std::string pooled_block();

  cluster::Cluster& cluster_;
  Config config_;
  std::shared_ptr<BufferPool> pool_;
  // Liveness token for pin deleters: a lease released after the cache is
  // gone (e.g. an engine's last job graph holding a pin past the BenchEnv's
  // cache) must skip the refcount/LRU accounting, not touch freed memory.
  // The lease's own shared_ptr keeps the Dataset blocks readable either way.
  std::shared_ptr<DatasetCache*> alive_;

  Counter* hits_c_;
  Counter* misses_c_;
  Counter* evictions_c_;
  Counter* invalidations_c_;
  Gauge* bytes_resident_g_;
  Gauge* hit_rate_g_;
  Gauge* datasets_g_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  // LRU order of unpinned entries, least recent first.
  std::list<std::string> lru_;
  uint64_t bytes_resident_ = 0;
  uint64_t next_generation_ = 1;
  // Names invalidated while a writer was open: name -> first generation
  // allowed to commit.
  std::map<std::string, uint64_t> commit_fences_;
  Stats stats_;
};

}  // namespace hamr::cache
