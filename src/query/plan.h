// Logical query plans over named tables (DESIGN.md §13).
//
// The operator set is the relational core the BigBench-style workloads need:
//
//   scan(table)                      - all rows of a catalog table
//   filter(child, pred)              - rows where the predicate holds
//   project(child, cols)             - reorder / drop columns
//   hash_join(left, right, lk, rk)   - inner equi-join on one key column
//   group_by(child, keys, aggs)      - grouped count / sum / min / max
//
// A plan is a tree of owned nodes built with the free functions below.
// output_schema() type-checks the whole tree (column indices in range,
// predicate literal types match, join keys share a type, sums only over
// numeric columns) and computes each operator's output schema - the same
// function drives both the reference evaluator and the flowlet lowering, so
// the two paths cannot disagree about shapes.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/row.h"

namespace hamr::query {

struct Table {
  Schema schema;
  std::vector<Row> rows;
};

struct Catalog {
  std::map<std::string, Table> tables;

  // Throws std::invalid_argument on an unknown table.
  const Table& at(const std::string& name) const;
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

// Predicate expression: comparisons of a column against a literal of the
// same type, combined with and/or/not.
struct Expr {
  enum class Kind : uint8_t { kCmp, kAnd, kOr, kNot };
  Kind kind = Kind::kCmp;

  // kCmp:
  uint32_t col = 0;
  CmpOp op = CmpOp::kEq;
  Value literal;

  // kAnd/kOr (>= 1 child) and kNot (exactly 1):
  std::vector<Expr> children;

  static Expr cmp(uint32_t col, CmpOp op, Value literal);
  static Expr and_of(std::vector<Expr> children);
  static Expr or_of(std::vector<Expr> children);
  static Expr not_of(Expr child);
};

// Evaluates against a row of the schema the expression was validated for.
bool eval_predicate(const Expr& expr, const Row& row);

// Throws std::invalid_argument when a column is out of range, a literal's
// type differs from its column's, or a node has the wrong child count.
void validate_expr(const Expr& expr, const Schema& schema);

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax };

struct AggSpec {
  AggKind kind = AggKind::kCount;
  uint32_t col = 0;  // ignored for kCount
};

struct Plan {
  enum class Kind : uint8_t { kScan, kFilter, kProject, kJoin, kGroupBy };
  Kind kind = Kind::kScan;

  std::string table;  // kScan

  Expr pred;  // kFilter

  std::vector<uint32_t> cols;  // kProject (non-empty)

  // kFilter/kProject/kGroupBy use child; kJoin uses child (left) + right.
  std::unique_ptr<Plan> child;
  std::unique_ptr<Plan> right;
  // kJoin: equal-length, non-empty key column lists; rows match when every
  // pair of key columns is equal (keys compose via encode_key's
  // self-describing concatenation, so one encoded key covers them all).
  std::vector<uint32_t> left_keys, right_keys;

  std::vector<uint32_t> keys;  // kGroupBy (non-empty)
  std::vector<AggSpec> aggs;   // kGroupBy (non-empty)
};

using PlanPtr = std::unique_ptr<Plan>;

PlanPtr scan(std::string table);
PlanPtr filter(PlanPtr child, Expr pred);
PlanPtr project(PlanPtr child, std::vector<uint32_t> cols);
// Inner join; output = left columns ("l.<name>") then right ("r.<name>").
// Single-column shorthand and the general multi-column form: rows join when
// all key column pairs match (types must agree pairwise).
PlanPtr hash_join(PlanPtr left, PlanPtr right, uint32_t left_key,
                  uint32_t right_key);
PlanPtr hash_join(PlanPtr left, PlanPtr right, std::vector<uint32_t> left_keys,
                  std::vector<uint32_t> right_keys);
// Output = key columns (original names) then one column per aggregate:
// "cnt" (i64), "sum_<col>" (column's numeric type, i64 sums wrap mod 2^64),
// "min_<col>" / "max_<col>" (column's type).
PlanPtr group_by(PlanPtr child, std::vector<uint32_t> keys,
                 std::vector<AggSpec> aggs);

// Validates the tree against the catalog and returns the root's output
// schema. Throws std::invalid_argument on any violation.
Schema output_schema(const Plan& plan, const Catalog& catalog);

// Distinct table names scanned anywhere in the tree, in first-visit order.
std::vector<std::string> scan_tables(const Plan& plan);

}  // namespace hamr::query
