#include "query/testgen.h"

#include <algorithm>
#include <string>

namespace hamr::query {

const char* family_name(Family family) {
  switch (family) {
    case Family::kScanFilter: return "scan_filter";
    case Family::kProject: return "project";
    case Family::kJoin: return "join";
    case Family::kGroupBy: return "group_by";
    case Family::kJoinGroupBy: return "join_group_by";
  }
  return "?";
}

namespace {

uint32_t pick(std::mt19937_64& rng, uint32_t bound) {
  return static_cast<uint32_t>(rng() % bound);
}

Value random_value(std::mt19937_64& rng, ColType type) {
  switch (type) {
    case ColType::kI64:
      if (pick(rng, 10) == 0) {
        const int64_t magnitude = 1'000'000'000'000'000;
        return Value::of(pick(rng, 2) ? magnitude : -magnitude);
      }
      return Value::of(static_cast<int64_t>(pick(rng, 101)) - 50);
    case ColType::kF64:
      // 1/16 grid keeps every sum order-independent (see header).
      return Value::of((static_cast<double>(pick(rng, 1601)) - 800) / 16.0);
    case ColType::kStr: {
      std::string s;
      const uint32_t len = pick(rng, 9);
      for (uint32_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + pick(rng, 4)));
      }
      return Value::of(std::move(s));
    }
  }
  return Value{};
}

uint32_t random_row_count(std::mt19937_64& rng) {
  if (pick(rng, 10) == 0) return 0;  // empty-input coverage
  return 1 + pick(rng, 200);
}

Expr random_pred(std::mt19937_64& rng, const Table& table) {
  const auto leaf = [&] {
    const uint32_t col = pick(rng, static_cast<uint32_t>(table.schema.size()));
    const ColType type = table.schema.cols[col].type;
    // Draw the literal from the data half the time so selectivity is
    // neither ~0 nor ~1.
    Value literal = (!table.rows.empty() && pick(rng, 2) == 0)
                        ? table.rows[pick(rng, static_cast<uint32_t>(
                                                   table.rows.size()))][col]
                        : random_value(rng, type);
    const CmpOp op = static_cast<CmpOp>(pick(rng, 6));
    return Expr::cmp(col, op, std::move(literal));
  };

  switch (pick(rng, 10)) {
    case 0:
    case 1: {
      std::vector<Expr> children;
      children.push_back(leaf());
      children.push_back(leaf());
      return pick(rng, 2) ? Expr::and_of(std::move(children))
                          : Expr::or_of(std::move(children));
    }
    case 2:
      return Expr::not_of(leaf());
    default:
      return leaf();
  }
}

std::vector<AggSpec> random_aggs(std::mt19937_64& rng, const Schema& schema) {
  std::vector<AggSpec> aggs;
  const uint32_t count = 1 + pick(rng, 3);
  for (uint32_t i = 0; i < count; ++i) {
    AggSpec agg;
    agg.kind = static_cast<AggKind>(pick(rng, 4));
    if (agg.kind != AggKind::kCount) {
      agg.col = pick(rng, static_cast<uint32_t>(schema.size()));
      if (agg.kind == AggKind::kSum &&
          schema.cols[agg.col].type == ColType::kStr) {
        agg.kind = AggKind::kCount;  // no string sums
      }
    }
    aggs.push_back(agg);
  }
  return aggs;
}

std::vector<uint32_t> random_keys(std::mt19937_64& rng, const Schema& schema) {
  std::vector<uint32_t> keys;
  const uint32_t count = 1 + pick(rng, 2);
  for (uint32_t i = 0; i < count; ++i) {
    keys.push_back(pick(rng, static_cast<uint32_t>(schema.size())));
  }
  return keys;
}

std::vector<uint32_t> random_projection(std::mt19937_64& rng,
                                        const Schema& schema) {
  std::vector<uint32_t> cols;
  const uint32_t count =
      1 + pick(rng, static_cast<uint32_t>(schema.size()));
  for (uint32_t i = 0; i < count; ++i) {
    cols.push_back(pick(rng, static_cast<uint32_t>(schema.size())));
  }
  return cols;
}

// Rewrites ~half of `table`'s key tuples (columns `keys`) to key tuples
// drawn from `other`'s `other_keys` columns, so joins on those columns
// produce matches without being degenerate.
void correlate_keys(std::mt19937_64& rng, Table* table,
                    const std::vector<uint32_t>& keys, const Table& other,
                    const std::vector<uint32_t>& other_keys) {
  if (other.rows.empty()) return;
  for (Row& row : table->rows) {
    if (pick(rng, 2) == 0) {
      const Row& src =
          other.rows[pick(rng, static_cast<uint32_t>(other.rows.size()))];
      for (size_t k = 0; k < keys.size(); ++k) {
        row[keys[k]] = src[other_keys[k]];
      }
    }
  }
}

PlanPtr maybe_filter(std::mt19937_64& rng, PlanPtr plan, const Table& table) {
  if (pick(rng, 2) == 0) return plan;
  return filter(std::move(plan), random_pred(rng, table));
}

}  // namespace

Table random_table(std::mt19937_64& rng, uint32_t rows) {
  Table table;
  const uint32_t cols = 2 + pick(rng, 4);
  for (uint32_t c = 0; c < cols; ++c) {
    // Column 0 is always i64 so key-based plans always have a key to use.
    const ColType type =
        c == 0 ? ColType::kI64 : static_cast<ColType>(pick(rng, 3));
    std::string name = "c";
    name += std::to_string(c);
    table.schema.cols.push_back({std::move(name), type});
  }
  table.rows.reserve(rows);
  for (uint32_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) {
      row.push_back(random_value(rng, table.schema.cols[c].type));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

GeneratedQuery generate_query(Family family, uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull +
                      static_cast<uint64_t>(family));
  GeneratedQuery q;

  Table t1 = random_table(rng, random_row_count(rng));

  switch (family) {
    case Family::kScanFilter: {
      PlanPtr plan = filter(scan("t1"), random_pred(rng, t1));
      if (pick(rng, 3) == 0) plan = filter(std::move(plan), random_pred(rng, t1));
      q.plan = std::move(plan);
      break;
    }

    case Family::kProject: {
      PlanPtr plan = maybe_filter(rng, scan("t1"), t1);
      q.plan = project(std::move(plan), random_projection(rng, t1.schema));
      break;
    }

    case Family::kJoin:
    case Family::kJoinGroupBy: {
      Table t2 = random_table(rng, random_row_count(rng));
      // Half the time (when column types line up) join on a composed
      // {c0, c1} key tuple instead of bare c0, exercising multi-column
      // encode_key composition end to end.
      std::vector<uint32_t> left_keys{0};
      std::vector<uint32_t> right_keys{0};
      if (t1.schema.cols[1].type == t2.schema.cols[1].type &&
          pick(rng, 2) == 0) {
        left_keys.push_back(1);
        right_keys.push_back(1);
      }
      correlate_keys(rng, &t2, right_keys, t1, left_keys);
      PlanPtr left = maybe_filter(rng, scan("t1"), t1);
      PlanPtr right = maybe_filter(rng, scan("t2"), t2);
      PlanPtr joined =
          hash_join(std::move(left), std::move(right), left_keys, right_keys);

      Catalog tmp;  // joined schema for the operators above the join
      tmp.tables["t1"] = t1;
      tmp.tables["t2"] = t2;
      const Schema joined_schema = output_schema(*joined, tmp);

      if (family == Family::kJoin) {
        if (pick(rng, 5) < 2) {
          joined = project(std::move(joined),
                           random_projection(rng, joined_schema));
        }
        q.plan = std::move(joined);
      } else {
        q.plan = group_by(std::move(joined), random_keys(rng, joined_schema),
                          random_aggs(rng, joined_schema));
      }
      q.catalog.tables["t2"] = std::move(t2);
      break;
    }

    case Family::kGroupBy: {
      PlanPtr plan = maybe_filter(rng, scan("t1"), t1);
      q.plan = group_by(std::move(plan), random_keys(rng, t1.schema),
                        random_aggs(rng, t1.schema));
      break;
    }
  }

  q.catalog.tables["t1"] = std::move(t1);
  return q;
}

}  // namespace hamr::query
