// Seeded random tables and plans for the differential test suite and the
// BigBench-style benches (DESIGN.md §13).
//
// Everything here is deterministic in its seed: the same seed yields the
// same catalog and plan, so a differential failure replays exactly.
//
// Value domains are chosen for the byte-identical contract:
//   * i64 mostly draws from a small domain (join/group collisions happen),
//     with occasional +-1e15 outliers - i64 sums wrap deterministically, so
//     magnitude is unconstrained;
//   * f64 draws from the 1/16 grid in [-50, 50]. Sums of millions of such
//     values stay far inside 2^53 ulps of the grid, so every partial-sum
//     order produces the same IEEE double - a requirement for comparing an
//     out-of-order engine fold against the sequential reference;
//   * strings are short, lowercase, from a 4-letter alphabet (collisions),
//     including empty strings.
#pragma once

#include <cstdint>
#include <random>

#include "query/plan.h"

namespace hamr::query {

// One operator family of the differential suite.
enum class Family {
  kScanFilter,    // filter(scan), sometimes stacked filters
  kProject,       // project over (optionally filtered) scan
  kJoin,          // hash_join of two scans, filters below, project above
  kGroupBy,       // group_by over (optionally filtered) scan
  kJoinGroupBy,   // group_by over hash_join - the BigBench shape
};

const char* family_name(Family family);

struct GeneratedQuery {
  Catalog catalog;
  PlanPtr plan;
};

// A random table with `rows` rows and 2-5 columns of mixed types (always at
// least one i64 column, so key-based plans can be generated against it).
Table random_table(std::mt19937_64& rng, uint32_t rows);

// A random valid plan of the family plus the catalog it reads. Row counts
// range from 0 (empty-input coverage happens naturally) to ~200.
GeneratedQuery generate_query(Family family, uint64_t seed);

}  // namespace hamr::query
