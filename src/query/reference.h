// Reference evaluator: the trivially-correct, single-threaded oracle for the
// query layer (DESIGN.md §13).
//
// It evaluates the same logical plan tree the planner lowers to flowlet
// DAGs, using the most obvious implementation of each operator - row loops,
// a hash multimap for the join build side, a hash map of accumulators for
// group-by. It is both the spec readers consult for operator semantics and
// the oracle the differential suite compares the engine path against:
// canonical(schema, engine_rows) must equal canonical(schema, reference
// rows) byte-for-byte.
//
// Semantics pinned here (and matched exactly by the flowlet operators):
//   * join / group keys match iff their encode_key() bytes are equal, so an
//     i64 never matches an f64 of the same magnitude;
//   * i64 sums accumulate as wrapping uint64 (deterministic overflow);
//   * f64 sums add in IEEE double. Addition order differs between the two
//     paths, so byte-identical results require inputs whose sums are exact
//     (the generators emit f64 on a 1/16 grid well inside 2^53 - see
//     testgen.h); count/min/max are order-independent for any input;
//   * group_by emits one row per key that had at least one input row (an
//     empty input produces an empty result, never a global-aggregate row).
#pragma once

#include <string>
#include <vector>

#include "query/plan.h"

namespace hamr::query {

// Evaluates the plan over in-memory catalog tables. The plan must pass
// output_schema() validation (this calls it and so throws the same errors).
std::vector<Row> reference_eval(const Plan& plan, const Catalog& catalog);

// Canonical form for differential comparison: every row encoded with the
// schema, sorted lexicographically as byte strings.
std::vector<std::string> canonical(const Schema& schema,
                                   const std::vector<Row>& rows);

}  // namespace hamr::query
