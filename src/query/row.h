// Typed row format for the relational query layer (DESIGN.md §13).
//
// A Schema is an ordered list of named, typed columns (i64 / f64 / string);
// a Row holds one Value per column. Rows cross node boundaries in schema
// order using the serde:: primitives - zigzag varint for i64, raw IEEE-754
// bits for f64, length-prefixed bytes for strings - so the encoding is
// compact, strictly bounds-checked on decode, and *injective*: two rows of
// one schema encode to the same bytes iff they are equal. The differential
// test suite leans on injectivity: query results are canonicalized as sorted
// encoded-row byte strings and compared byte-for-byte between the engine
// path and the reference evaluator.
//
// Shuffle and group keys use the self-describing encode_key() form (a type
// byte before each value), so key equality on raw bytes is value equality
// across the hash-partitioner, the FlatAccTable, and the reference
// evaluator's hash maps - one definition of "same key" everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serde/serde.h"

namespace hamr::query {

enum class ColType : uint8_t { kI64 = 0, kF64 = 1, kStr = 2 };

const char* col_type_name(ColType type);

// One typed cell. Only the member selected by `type` is meaningful; the
// typed accessors throw std::invalid_argument on a kind mismatch so plan
// bugs surface as errors, not as reads of stale storage.
struct Value {
  ColType type = ColType::kI64;
  int64_t i = 0;
  double f = 0;
  std::string s;

  static Value of(int64_t v);
  static Value of(double v);
  static Value of(std::string v);
  static Value of(const char* v) { return of(std::string(v)); }

  int64_t as_i64() const;
  double as_f64() const;
  const std::string& as_str() const;

  // f64 compares by bit pattern: Value equality is representation equality,
  // matching the byte-identical contract of the differential tests.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
};

using Row = std::vector<Value>;

struct Column {
  std::string name;
  ColType type = ColType::kI64;
};

struct Schema {
  std::vector<Column> cols;

  size_t size() const { return cols.size(); }
  // -1 when absent.
  int index_of(std::string_view name) const;

  // Appends the row in schema order. Throws std::invalid_argument on an
  // arity or column-type mismatch.
  void encode_row(const Row& row, serde::Writer* writer) const;
  std::string encode_row(const Row& row) const;

  // Decodes one row, consuming exactly its bytes from the reader; throws
  // serde::DecodeError on truncation. The string_view overload additionally
  // requires the buffer to end with the row.
  Row decode_row(serde::Reader* reader) const;
  Row decode_row(std::string_view bytes) const;

  // Column-major batch codec for staged shards (serde/batch.h runs): varint
  // row count, then each column as one contiguous run - i64/f64 as raw
  // fixed-width runs moved with a single memcpy, strings as a length block
  // plus one bounds-checked payload block. Pays one check per column per
  // block instead of one per cell; same arity/type errors as encode_row.
  // Note: this is a *block* layout, distinct from the injective per-row
  // encoding the differential tests canonicalize with.
  void encode_row_block(const Row* rows, size_t count,
                        serde::Writer* writer) const;
  std::string encode_row_block(const std::vector<Row>& rows) const;
  std::vector<Row> decode_row_block(std::string_view bytes) const;

  std::string to_string() const;  // "name:type, ..." for error messages
};

// Self-describing single-value encoding (type byte + row encoding of the
// value) used for shuffle/group keys. Injective across types: an i64 5 and
// an f64 5.0 never collide.
void encode_key_value(const Value& value, serde::Writer* writer);

// Concatenated encode_key_value of row[c] for each c in cols.
std::string encode_key(const Row& row, const std::vector<uint32_t>& cols);

// Inverse of encode_key for known key-column types; throws
// serde::DecodeError on truncation or a type-byte mismatch.
Row decode_key(std::string_view bytes, const std::vector<ColType>& types);

// Hex transport for encoded rows in sink output files (rows may contain
// arbitrary string bytes, including newlines and tabs).
std::string to_hex(std::string_view bytes);
std::string from_hex(std::string_view hex);  // throws std::invalid_argument

}  // namespace hamr::query
