#include "query/reference.h"

#include <algorithm>
#include <unordered_map>

namespace hamr::query {

namespace {

struct Evaluated {
  Schema schema;
  std::vector<Row> rows;
};

Evaluated eval(const Plan& plan, const Catalog& catalog);

Evaluated eval_join(const Plan& plan, const Catalog& catalog) {
  Evaluated left = eval(*plan.child, catalog);
  Evaluated right = eval(*plan.right, catalog);

  // Build on the left, probe with the right; keys match on encoded bytes.
  std::unordered_multimap<std::string, const Row*> build;
  build.reserve(left.rows.size());
  for (const Row& l : left.rows) {
    build.emplace(encode_key(l, plan.left_keys), &l);
  }

  Evaluated out;
  out.schema = output_schema(plan, catalog);
  for (const Row& r : right.rows) {
    const auto [begin, end] = build.equal_range(encode_key(r, plan.right_keys));
    for (auto it = begin; it != end; ++it) {
      Row joined = *it->second;
      joined.insert(joined.end(), r.begin(), r.end());
      out.rows.push_back(std::move(joined));
    }
  }
  return out;
}

// One group's running aggregates, updated a row at a time.
struct GroupAcc {
  Row key;  // the group's key column values
  uint64_t count = 0;
  std::vector<uint64_t> sum_i;  // wrapping, one per agg (unused slots stay 0)
  std::vector<double> sum_f;
  std::vector<Value> minmax;
  std::vector<bool> has_minmax;
};

Evaluated eval_group_by(const Plan& plan, const Catalog& catalog) {
  Evaluated in = eval(*plan.child, catalog);
  const size_t naggs = plan.aggs.size();

  std::unordered_map<std::string, GroupAcc> groups;
  for (const Row& row : in.rows) {
    GroupAcc& acc = groups[encode_key(row, plan.keys)];
    if (acc.count == 0 && acc.key.empty()) {
      for (uint32_t k : plan.keys) acc.key.push_back(row[k]);
      acc.sum_i.assign(naggs, 0);
      acc.sum_f.assign(naggs, 0);
      acc.minmax.assign(naggs, Value{});
      acc.has_minmax.assign(naggs, false);
    }
    ++acc.count;
    for (size_t a = 0; a < naggs; ++a) {
      const AggSpec& agg = plan.aggs[a];
      switch (agg.kind) {
        case AggKind::kCount:
          break;  // acc.count covers it
        case AggKind::kSum: {
          const Value& v = row[agg.col];
          if (v.type == ColType::kI64) {
            acc.sum_i[a] += static_cast<uint64_t>(v.i);
          } else {
            acc.sum_f[a] += v.f;
          }
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax: {
          const Value& v = row[agg.col];
          if (!acc.has_minmax[a]) {
            acc.minmax[a] = v;
            acc.has_minmax[a] = true;
            break;
          }
          bool take = false;
          switch (v.type) {
            case ColType::kI64: take = v.i < acc.minmax[a].i; break;
            case ColType::kF64: take = v.f < acc.minmax[a].f; break;
            case ColType::kStr: take = v.s < acc.minmax[a].s; break;
          }
          if (agg.kind == AggKind::kMax) take = !take && !(v == acc.minmax[a]);
          if (take) acc.minmax[a] = v;
          break;
        }
      }
    }
  }

  Evaluated out;
  out.schema = output_schema(plan, catalog);
  out.rows.reserve(groups.size());
  for (auto& [key_bytes, acc] : groups) {
    (void)key_bytes;
    Row row = std::move(acc.key);
    for (size_t a = 0; a < naggs; ++a) {
      const AggSpec& agg = plan.aggs[a];
      switch (agg.kind) {
        case AggKind::kCount:
          row.push_back(Value::of(static_cast<int64_t>(acc.count)));
          break;
        case AggKind::kSum:
          if (in.schema.cols[agg.col].type == ColType::kI64) {
            row.push_back(Value::of(static_cast<int64_t>(acc.sum_i[a])));
          } else {
            row.push_back(Value::of(acc.sum_f[a]));
          }
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          row.push_back(acc.minmax[a]);
          break;
      }
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Evaluated eval(const Plan& plan, const Catalog& catalog) {
  switch (plan.kind) {
    case Plan::Kind::kScan: {
      const Table& table = catalog.at(plan.table);
      return {table.schema, table.rows};
    }

    case Plan::Kind::kFilter: {
      Evaluated in = eval(*plan.child, catalog);
      Evaluated out;
      out.schema = in.schema;
      for (Row& row : in.rows) {
        if (eval_predicate(plan.pred, row)) out.rows.push_back(std::move(row));
      }
      return out;
    }

    case Plan::Kind::kProject: {
      Evaluated in = eval(*plan.child, catalog);
      Evaluated out;
      out.schema = output_schema(plan, catalog);
      for (const Row& row : in.rows) {
        Row projected;
        projected.reserve(plan.cols.size());
        for (uint32_t c : plan.cols) projected.push_back(row[c]);
        out.rows.push_back(std::move(projected));
      }
      return out;
    }

    case Plan::Kind::kJoin:
      return eval_join(plan, catalog);

    case Plan::Kind::kGroupBy:
      return eval_group_by(plan, catalog);
  }
  return {};
}

}  // namespace

std::vector<Row> reference_eval(const Plan& plan, const Catalog& catalog) {
  output_schema(plan, catalog);  // validate first; throws on a bad plan
  return eval(plan, catalog).rows;
}

std::vector<std::string> canonical(const Schema& schema,
                                   const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(schema.encode_row(row));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hamr::query
