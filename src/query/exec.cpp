#include "query/exec.h"

#include <map>
#include <mutex>
#include <stdexcept>

#include "cache/dataset_cache.h"
#include "common/bytes.h"
#include "serde/batch.h"

namespace hamr::query {

std::string encode_table_shard(const Table& table, uint32_t shard,
                               uint32_t num_shards) {
  // Framed row blocks: (varint len | encode_row_block bytes)*. The batch
  // codec amortizes bounds checks across a block; the framing lets the scan
  // loader walk blocks with the shared serde::get_framed_run cursor loop.
  constexpr size_t kRowsPerBlock = 256;
  ByteBuffer buf;
  serde::Writer writer(buf);
  std::vector<Row> block;
  block.reserve(kRowsPerBlock);
  for (size_t i = shard; i < table.rows.size(); i += num_shards) {
    block.push_back(table.rows[i]);
    if (block.size() == kRowsPerBlock) {
      serde::put_framed(writer, table.schema.encode_row_block(block));
      block.clear();
    }
  }
  if (!block.empty()) {
    serde::put_framed(writer, table.schema.encode_row_block(block));
  }
  return std::string(buf.view());
}

bool RowPipeline::apply(Row* row) const {
  for (const Step& step : steps) {
    if (step.is_filter) {
      if (!eval_predicate(step.pred, *row)) return false;
    } else {
      Row projected;
      projected.reserve(step.cols.size());
      for (uint32_t c : step.cols) projected.push_back(std::move((*row)[c]));
      *row = std::move(projected);
    }
  }
  return true;
}

// --- aggregate state codec -------------------------------------------------

namespace {

void put_minmax(const Value& v, serde::Writer* w) {
  switch (v.type) {
    case ColType::kI64: w->put_zigzag(v.i); break;
    case ColType::kF64: w->put_double(v.f); break;
    case ColType::kStr: w->put_bytes(v.s); break;
  }
}

Value get_minmax(ColType type, serde::Reader* r) {
  switch (type) {
    case ColType::kI64: return Value::of(r->get_zigzag());
    case ColType::kF64: return Value::of(r->get_double());
    case ColType::kStr: return Value::of(std::string(r->get_bytes()));
  }
  throw serde::DecodeError("unknown minmax type");
}

bool value_less(const Value& a, const Value& b) {
  switch (a.type) {
    case ColType::kI64: return a.i < b.i;
    case ColType::kF64: return a.f < b.f;
    case ColType::kStr: return a.s < b.s;
  }
  return false;
}

}  // namespace

std::string GroupCompiled::state_of_row(const Row& row) const {
  ByteBuffer buf;
  serde::Writer writer(buf);
  for (const AggSpec& agg : aggs) {
    switch (agg.kind) {
      case AggKind::kCount:
        writer.put_varint(1);
        break;
      case AggKind::kSum: {
        const Value& v = row[agg.col];
        if (v.type == ColType::kI64) {
          writer.put_fixed64(static_cast<uint64_t>(v.i));
        } else {
          writer.put_double(v.as_f64());
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax:
        put_minmax(row[agg.col], &writer);
        break;
    }
  }
  return std::string(buf.view());
}

std::string GroupCompiled::merge_states(std::string_view a,
                                        std::string_view b) const {
  serde::Reader ra(a), rb(b);
  ByteBuffer buf;
  serde::Writer writer(buf);
  for (const AggSpec& agg : aggs) {
    switch (agg.kind) {
      case AggKind::kCount:
        writer.put_varint(ra.get_varint() + rb.get_varint());
        break;
      case AggKind::kSum: {
        const ColType t = in_schema.cols[agg.col].type;
        if (t == ColType::kI64) {
          writer.put_fixed64(ra.get_fixed64() + rb.get_fixed64());
        } else {
          writer.put_double(ra.get_double() + rb.get_double());
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        const ColType t = in_schema.cols[agg.col].type;
        Value va = get_minmax(t, &ra);
        Value vb = get_minmax(t, &rb);
        const bool b_less = value_less(vb, va);
        const bool take_b = agg.kind == AggKind::kMin
                                ? b_less
                                : (!b_less && !(va == vb));
        put_minmax(take_b ? vb : va, &writer);
        break;
      }
    }
  }
  return std::string(buf.view());
}

Row GroupCompiled::finalize(Row key_vals, std::string_view state) const {
  serde::Reader reader(state);
  Row out = std::move(key_vals);
  for (const AggSpec& agg : aggs) {
    switch (agg.kind) {
      case AggKind::kCount:
        out.push_back(Value::of(static_cast<int64_t>(reader.get_varint())));
        break;
      case AggKind::kSum:
        if (in_schema.cols[agg.col].type == ColType::kI64) {
          out.push_back(Value::of(static_cast<int64_t>(reader.get_fixed64())));
        } else {
          out.push_back(Value::of(reader.get_double()));
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        out.push_back(get_minmax(in_schema.cols[agg.col].type, &reader));
        break;
    }
  }
  return out;
}

// --- emit spec -------------------------------------------------------------

void EmitSpec::emit_row(const Row& row, engine::Context& ctx) const {
  switch (mode) {
    case Mode::kLocalRow:
      // The edge is local: the record stays on this node regardless of key.
      ctx.emit(0, std::string_view(), schema.encode_row(row));
      return;
    case Mode::kJoinSide: {
      std::string value;
      value.push_back(static_cast<char>(side));
      value += schema.encode_row(row);
      ctx.emit(0, encode_key(row, key_cols), value);
      return;
    }
    case Mode::kGroupState:
      ctx.emit(0, encode_key(row, group->key_cols), group->state_of_row(row));
      return;
  }
}

// --- flowlets --------------------------------------------------------------

namespace {

// Reads a staged row shard from the node-local store in fine-grain chunks.
// One instance serves every split scheduled on its node; the file cache and
// cursor math mirror engine::TextLoader.
class RowScanLoader : public engine::LoaderFlowlet {
 public:
  explicit RowScanLoader(std::shared_ptr<const ScanCompiled> c)
      : c_(std::move(c)) {}

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override {
    std::shared_ptr<const std::string> data = split_data(split, ctx);
    const std::string_view shard =
        std::string_view(*data).substr(split.offset, split.length);
    size_t pos = static_cast<size_t>(*cursor);
    if (pos >= shard.size()) return false;

    // Walk framed row blocks with the shared chunked-decode loop (also used
    // by the sort run loader), batch-decoding each block in one pass.
    uint64_t produced = 0;
    std::vector<std::string_view> blocks;
    while (produced < c_->rows_per_chunk && pos < shard.size()) {
      blocks.clear();
      if (serde::get_framed_run(shard, &pos, 1, &blocks) == 0) break;
      std::vector<Row> rows = c_->table_schema.decode_row_block(blocks[0]);
      produced += rows.size();
      for (Row& row : rows) {
        if (c_->pipeline.apply(&row)) c_->emit.emit_row(row, ctx);
      }
    }
    *cursor = pos;
    return pos < shard.size();
  }

 private:
  std::shared_ptr<const std::string> split_data(const engine::InputSplit& split,
                                                engine::Context& ctx) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(split.path);
      if (it != cache_.end()) return it->second;
    }
    auto result = ctx.local_store().read_file(split.path);
    if (!result.ok()) {
      throw std::runtime_error("query scan: cannot read " + split.path + ": " +
                               result.status().ToString());
    }
    auto data =
        std::make_shared<const std::string>(std::move(result).value());
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.emplace(split.path, std::move(data)).first->second;
  }

  const std::shared_ptr<const ScanCompiled> c_;
  std::mutex mu_;
  std::map<std::string, std::shared_ptr<const std::string>> cache_;
};

// Scan over a dataset-cache-resident staged table: each record value is one
// encode_row_block frame, decoded straight from the pinned block buffers -
// no store read, no per-query re-stage. The held pin keeps the dataset
// resident (and its buffers valid) for the life of the job.
class CachedRowScanLoader : public engine::LoaderFlowlet {
 public:
  CachedRowScanLoader(std::shared_ptr<const ScanCompiled> c,
                      std::shared_ptr<const cache::Dataset> dataset)
      : c_(std::move(c)), dataset_(std::move(dataset)) {}

  bool load_chunk(const engine::InputSplit& split, uint64_t* cursor,
                  engine::Context& ctx) override {
    const uint32_t shard_idx = static_cast<uint32_t>(split.user_tag);
    if (shard_idx >= dataset_->nodes()) return false;
    const cache::Dataset::Shard& shard = dataset_->shard(shard_idx);
    cache::ShardCursor sc;
    sc.packed = *cursor;
    uint64_t produced = 0;
    std::string_view key;
    std::string_view block;
    bool more = true;
    while (produced < c_->rows_per_chunk &&
           (more = cache::next_record(shard, &sc, &key, &block))) {
      std::vector<Row> rows = c_->table_schema.decode_row_block(block);
      produced += rows.size();
      for (Row& row : rows) {
        if (c_->pipeline.apply(&row)) c_->emit.emit_row(row, ctx);
      }
    }
    *cursor = sc.packed;
    return more;
  }

 private:
  const std::shared_ptr<const ScanCompiled> c_;
  const std::shared_ptr<const cache::Dataset> dataset_;
};

// Fused filter/project chain above a join or group-by, fed over a local
// edge. Stateless, so concurrent process() calls need no synchronization.
class FusedMap : public engine::MapFlowlet {
 public:
  explicit FusedMap(std::shared_ptr<const MapCompiled> c) : c_(std::move(c)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    Row row = c_->in_schema.decode_row(record.value);
    if (c_->pipeline.apply(&row)) c_->emit.emit_row(row, ctx);
  }

 private:
  const std::shared_ptr<const MapCompiled> c_;
};

// Inner equi-join: both sides shuffle on the encoded key, so one reduce call
// sees every row of one key from both sides and emits the cross product.
class JoinFlowlet : public engine::ReduceFlowlet {
 public:
  explicit JoinFlowlet(std::shared_ptr<const JoinCompiled> c)
      : c_(std::move(c)) {}

  void reduce(std::string_view key,
              const std::vector<std::string_view>& values,
              engine::Context& ctx) override {
    (void)key;
    std::vector<Row> left, right;
    for (std::string_view v : values) {
      if (v.empty()) throw serde::DecodeError("empty join value");
      const uint8_t side = static_cast<uint8_t>(v.front());
      std::string_view bytes = v.substr(1);
      if (side == 0) {
        left.push_back(c_->left_schema.decode_row(bytes));
      } else {
        right.push_back(c_->right_schema.decode_row(bytes));
      }
    }
    for (const Row& l : left) {
      for (const Row& r : right) {
        Row joined = l;
        joined.insert(joined.end(), r.begin(), r.end());
        c_->emit.emit_row(joined, ctx);
      }
    }
  }

 private:
  const std::shared_ptr<const JoinCompiled> c_;
};

// Grouped aggregation on the partial-reduce path: every arriving value is
// already an aggregate state, fold() merges two states, and the node's
// FlatAccTable holds one accumulator per encoded group key. The same fold
// runs sender-side when the in-edge has the combiner enabled.
class GroupByFlowlet : public engine::PartialReduceFlowlet {
 public:
  GroupByFlowlet(std::shared_ptr<const GroupCompiled> g, EmitSpec emit)
      : g_(std::move(g)), emit_(std::move(emit)) {}

  void fold(std::string_view key, std::string_view value,
            std::string& acc) override {
    (void)key;
    acc = acc.empty() ? std::string(value) : g_->merge_states(acc, value);
  }

  void emit_result(std::string_view key, std::string_view acc,
                   engine::Context& ctx) override {
    emit_.emit_row(g_->finalize(decode_key(key, g_->key_types), acc), ctx);
  }

 private:
  const std::shared_ptr<const GroupCompiled> g_;
  const EmitSpec emit_;
};

// Terminal sink: collects this node's final rows and writes them as hex
// lines, one row per line, for collect_output_payload() to merge.
class SinkFlowlet : public engine::MapFlowlet {
 public:
  explicit SinkFlowlet(std::string out_prefix)
      : out_prefix_(std::move(out_prefix)) {}

  void process(const engine::KvPair& record, engine::Context& ctx) override {
    (void)ctx;
    std::string line = to_hex(record.value);
    line.push_back('\n');
    std::lock_guard<std::mutex> lock(mu_);
    out_ += line;
  }

  void finish(engine::Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    ctx.local_store().write_file(out_prefix_ + "node" + std::to_string(ctx.node()),
                                 out_);
  }

 private:
  const std::string out_prefix_;
  std::mutex mu_;  // distinct bins process concurrently
  std::string out_;
};

}  // namespace

engine::FlowletFactory make_scan_loader(std::shared_ptr<const ScanCompiled> c) {
  return [c] { return std::make_unique<RowScanLoader>(c); };
}

engine::FlowletFactory make_cached_scan_loader(
    std::shared_ptr<const ScanCompiled> c,
    std::shared_ptr<const cache::Dataset> dataset) {
  return [c, dataset] {
    return std::make_unique<CachedRowScanLoader>(c, dataset);
  };
}

engine::FlowletFactory make_fused_map(std::shared_ptr<const MapCompiled> c) {
  return [c] { return std::make_unique<FusedMap>(c); };
}

engine::FlowletFactory make_join(std::shared_ptr<const JoinCompiled> c) {
  return [c] { return std::make_unique<JoinFlowlet>(c); };
}

engine::FlowletFactory make_group_by(std::shared_ptr<const GroupCompiled> g,
                                     EmitSpec emit) {
  return [g, emit] { return std::make_unique<GroupByFlowlet>(g, emit); };
}

engine::FlowletFactory make_sink(std::string out_prefix) {
  return [out_prefix] { return std::make_unique<SinkFlowlet>(out_prefix); };
}

}  // namespace hamr::query
