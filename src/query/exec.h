// Physical operators of the query layer: the flowlets a lowered plan runs
// as, plus the codecs they share (DESIGN.md §13).
//
// Lowering maps plan operators onto the engine's four flowlet kinds:
//
//   scan(+fused filter/project)  -> LoaderFlowlet over staged row shards
//   filter/project above a join
//   or group-by                  -> MapFlowlet fed over a local edge
//   hash_join                    -> ReduceFlowlet (shuffle both sides by the
//                                   encoded join key, cross-product per key)
//   group_by                     -> PartialReduceFlowlet folding encoded
//                                   aggregate states into the node's
//                                   FlatAccTable (with the sender-side
//                                   combiner enabled on its in-edge)
//   result collection            -> sink MapFlowlet writing hex-encoded rows
//                                   to the node-local store
//
// Every producing flowlet carries an EmitSpec that says how its consumer
// wants rows handed over: plain local rows (sink / fused map), side-tagged
// rows keyed by the join key, or single-row aggregate states keyed by the
// group key. Group-by states are commutative + associative by construction
// - upstream emits the state *of one row* and fold() merges states - which
// is exactly what makes the sender-side combiner and crash-retry replays
// safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/flowlet.h"
#include "query/plan.h"

namespace hamr::cache {
class Dataset;
}  // namespace hamr::cache

namespace hamr::query {

// Staged shard of a table for one node: each row framed as
// varint(len) + Schema::encode_row bytes, rows dealt round-robin
// (row i lands in shard i % num_shards).
std::string encode_table_shard(const Table& table, uint32_t shard,
                               uint32_t num_shards);

// A fused chain of filter/project steps applied row-at-a-time.
struct RowPipeline {
  struct Step {
    bool is_filter = false;
    Expr pred;                   // is_filter
    std::vector<uint32_t> cols;  // !is_filter: projection
  };
  std::vector<Step> steps;

  // Applies the steps in order; returns false when a filter rejects.
  bool apply(Row* row) const;
};

// Compiled group-by: key layout, aggregate list, and the encoded aggregate
// state codec. States concatenate, per aggregate:
//   count      varint(u64)
//   sum(i64)   fixed64 (wrapping two's-complement sum - deterministic and
//              associative even on overflow)
//   sum(f64)   fixed64 IEEE bits
//   min/max    value in row encoding (zigzag / bits / length-prefixed bytes)
struct GroupCompiled {
  std::vector<uint32_t> key_cols;
  std::vector<ColType> key_types;
  std::vector<AggSpec> aggs;
  Schema in_schema;   // rows arriving at the group-by
  Schema out_schema;  // key columns + aggregate columns

  std::string state_of_row(const Row& row) const;
  std::string merge_states(std::string_view a, std::string_view b) const;
  // key_vals = decoded key columns; returns the final output row.
  Row finalize(Row key_vals, std::string_view state) const;
};

// How a producing flowlet hands rows to its (single) consumer.
struct EmitSpec {
  enum class Mode : uint8_t {
    kLocalRow,    // emit(0, "", row bytes) over a local edge
    kJoinSide,    // emit(0, encode_key(join key), side byte + row bytes)
    kGroupState,  // emit(0, encode_key(group keys), state_of_row(row))
  };
  Mode mode = Mode::kLocalRow;
  Schema schema;                              // producer's output schema
  std::vector<uint32_t> key_cols;             // kJoinSide (composed join key)
  uint8_t side = 0;                           // kJoinSide tag (0=left)
  std::shared_ptr<const GroupCompiled> group; // kGroupState

  void emit_row(const Row& row, engine::Context& ctx) const;
};

// --- flowlet factories (each captures its compiled, immutable stage) ------

struct ScanCompiled {
  Schema table_schema;
  RowPipeline pipeline;
  EmitSpec emit;
  uint64_t rows_per_chunk = 512;
};
engine::FlowletFactory make_scan_loader(std::shared_ptr<const ScanCompiled> c);

// Scan over a dataset-cache-resident staged table instead of shard files:
// each cached record's value is one framed row block (the same
// encode_row_block bytes the file shards hold), decoded straight out of the
// pinned buffers - zero disk reads per query. Splits come from
// cache::add_scan_splits (shard index in user_tag).
engine::FlowletFactory make_cached_scan_loader(
    std::shared_ptr<const ScanCompiled> c,
    std::shared_ptr<const cache::Dataset> dataset);

struct MapCompiled {
  Schema in_schema;
  RowPipeline pipeline;
  EmitSpec emit;
};
engine::FlowletFactory make_fused_map(std::shared_ptr<const MapCompiled> c);

struct JoinCompiled {
  Schema left_schema;
  Schema right_schema;
  EmitSpec emit;  // emit.schema is the joined schema
};
engine::FlowletFactory make_join(std::shared_ptr<const JoinCompiled> c);

engine::FlowletFactory make_group_by(std::shared_ptr<const GroupCompiled> g,
                                     EmitSpec emit);

// Sink: accumulates received encoded rows and writes them as hex lines to
// "<out_prefix>node<id>" in the node-local store on finish.
engine::FlowletFactory make_sink(std::string out_prefix);

}  // namespace hamr::query
