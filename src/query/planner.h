// Planner: lowers a logical plan to a flowlet DAG and runs it - directly on
// an Engine (tests, chaos suite) or submitted through the multi-tenant
// JobService (benches, serving traffic). See DESIGN.md §13 for the lowering
// rules; exec.h holds the physical operators.
//
// Life of a query:
//   1. stage_tables()  - deal each scanned table's rows round-robin across
//                        the nodes and write one framed-row shard file per
//                        node into its local store (the DFS-resident-input
//                        analog: scans read node-local disks, paper §5.1);
//   2. lower()         - recursively compile the plan tree into a
//                        FlowletGraph + JobInputs. Filter/project chains
//                        fuse into the flowlet below them (the scan loader
//                        when the base is a scan, a single local-edge map
//                        otherwise); joins and group-bys become shuffle
//                        stages; a sink map collects final rows per node;
//   3. run             - Engine::run or JobService::submit; the job's
//                        collect() merges every node's sink file into the
//                        ticket payload;
//   4. decode_payload  - hex lines back into typed rows.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "engine/engine.h"
#include "query/plan.h"
#include "service/job_service.h"

namespace hamr::query {

// Where a query's input tables were staged: one shard file per node at
// "input/query/<tag>/<table>", shard i holding rows i mod nodes.
struct StagedTables {
  std::string prefix;  // "input/query/<tag>/"
  uint32_t nodes = 0;
  // Per-table shard sizes in bytes, indexed by node.
  std::map<std::string, std::vector<uint64_t>> shard_bytes;

  std::string path_of(const std::string& table) const { return prefix + table; }
};

StagedTables stage_tables(cluster::Cluster& cluster, const Catalog& catalog,
                          const std::vector<std::string>& tables,
                          const std::string& tag);

struct Lowered {
  engine::FlowletGraph graph;
  engine::JobInputs inputs;
  Schema out_schema;
  std::string out_prefix;  // "out/query/<tag>/"
};

// Validates the plan (throws std::invalid_argument like output_schema) and
// compiles it against tables previously staged under the same catalog.
Lowered lower(const Plan& plan, const Catalog& catalog,
              const StagedTables& staged, const std::string& tag);

// Concatenated sink files (hex rows, one per line) of every node.
std::string collect_output_payload(cluster::Cluster& cluster,
                                   const std::string& out_prefix);

std::vector<Row> decode_payload(const Schema& schema, std::string_view payload);

// One-shot engine path: stage + lower + Engine::run + collect. `tag` keys
// the staged inputs and output files, so back-to-back queries on one
// cluster must use distinct tags.
std::vector<Row> run_on_engine(engine::Engine& engine, const Plan& plan,
                               const Catalog& catalog, const std::string& tag);

// Service path: stage + lower + JobService::submit. The returned ticket's
// payload() (valid once kDone) decodes with decode_payload(out_schema, ...).
struct SubmittedQuery {
  std::shared_ptr<service::JobTicket> ticket;
  Schema out_schema;
};

SubmittedQuery submit_query(service::JobService& service,
                            cluster::Cluster& cluster, const Plan& plan,
                            const Catalog& catalog,
                            const service::JobSpec& spec,
                            const std::string& tag);

}  // namespace hamr::query
