// Planner: lowers a logical plan to a flowlet DAG and runs it - directly on
// an Engine (tests, chaos suite) or submitted through the multi-tenant
// JobService (benches, serving traffic). See DESIGN.md §13 for the lowering
// rules; exec.h holds the physical operators.
//
// Life of a query:
//   1. stage_tables()  - deal each scanned table's rows round-robin across
//                        the nodes and write one framed-row shard file per
//                        node into its local store (the DFS-resident-input
//                        analog: scans read node-local disks, paper §5.1);
//   2. lower()         - recursively compile the plan tree into a
//                        FlowletGraph + JobInputs. Filter/project chains
//                        fuse into the flowlet below them (the scan loader
//                        when the base is a scan, a single local-edge map
//                        otherwise); joins and group-bys become shuffle
//                        stages; a sink map collects final rows per node;
//   3. run             - Engine::run or JobService::submit; the job's
//                        collect() merges every node's sink file into the
//                        ticket payload;
//   4. decode_payload  - hex lines back into typed rows.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/dataset_cache.h"
#include "cluster/cluster.h"
#include "engine/engine.h"
#include "ir/ir.h"
#include "query/plan.h"
#include "service/job_service.h"

namespace hamr::query {

// Where a query's input tables were staged: one shard file per node at
// "input/query/<tag>/<table>", shard i holding rows i mod nodes - or, for
// tables found in (or published to) the dataset cache, a pinned resident
// dataset "query/staged/<table>" whose records are the same framed row
// blocks, with no files written at all.
struct StagedTables {
  std::string prefix;  // "input/query/<tag>/"
  uint32_t nodes = 0;
  // Per-table shard sizes in bytes, indexed by node.
  std::map<std::string, std::vector<uint64_t>> shard_bytes;
  // Pinned cache datasets (held for the staging's lifetime) for tables that
  // skipped file staging. Lowering scans these via CachedRowScanLoader.
  std::map<std::string, std::shared_ptr<const cache::Dataset>> cached;

  std::string path_of(const std::string& table) const { return prefix + table; }
};

// Stages each table's rows for scanning. With a dataset cache, a table whose
// dataset "query/staged/<table>" is already resident (stamp = row count) is
// pinned and reused verbatim - multi-query sessions over one table stage it
// once instead of re-writing shard files per query. On a miss the shards are
// published to the cache (then pinned) instead of written to disk; only when
// the cache is absent (or a commit loses an invalidation race) does the
// original per-query file staging run.
StagedTables stage_tables(cluster::Cluster& cluster, const Catalog& catalog,
                          const std::vector<std::string>& tables,
                          const std::string& tag,
                          cache::DatasetCache* cache = nullptr);

struct Lowered {
  engine::FlowletGraph graph;
  engine::JobInputs inputs;
  Schema out_schema;
  std::string out_prefix;  // "out/query/<tag>/"
};

// Compiles the plan tree into flowlet IR (throws std::invalid_argument like
// output_schema). The graph is un-optimized: callers inspect/dump it, then
// run it through ir::optimize + ir::lower - which is exactly what lower()
// does. `out_prefix_out` receives the sink's output prefix when non-null.
ir::Graph lower_ir(const Plan& plan, const Catalog& catalog,
                   const StagedTables& staged, const std::string& tag,
                   std::string* out_prefix_out = nullptr);

// Validates the plan (throws std::invalid_argument like output_schema) and
// compiles it against tables previously staged under the same catalog:
// lower_ir + the standard IR pass pipeline (sender-side combiner placement
// on group-bys, sink/map fusion into the producing stage, dead-flowlet
// elimination) + backend lowering.
Lowered lower(const Plan& plan, const Catalog& catalog,
              const StagedTables& staged, const std::string& tag);

// Concatenated sink files (hex rows, one per line) of every node.
std::string collect_output_payload(cluster::Cluster& cluster,
                                   const std::string& out_prefix);

std::vector<Row> decode_payload(const Schema& schema, std::string_view payload);

// One-shot engine path: stage + lower + Engine::run + collect. `tag` keys
// the staged inputs and output files, so back-to-back queries on one
// cluster must use distinct tags. With `cache`, staged tables are served
// from (and published to) the dataset cache instead of per-query files.
std::vector<Row> run_on_engine(engine::Engine& engine, const Plan& plan,
                               const Catalog& catalog, const std::string& tag,
                               cache::DatasetCache* cache = nullptr);

// Service path: stage + lower + JobService::submit. The returned ticket's
// payload() (valid once kDone) decodes with decode_payload(out_schema, ...).
struct SubmittedQuery {
  std::shared_ptr<service::JobTicket> ticket;
  Schema out_schema;
};

// With `cache`, staged tables are cache-resident and their pins ride in the
// JobWork so the datasets stay resident until the job is terminal.
SubmittedQuery submit_query(service::JobService& service,
                            cluster::Cluster& cluster, const Plan& plan,
                            const Catalog& catalog,
                            const service::JobSpec& spec,
                            const std::string& tag,
                            cache::DatasetCache* cache = nullptr);

}  // namespace hamr::query
