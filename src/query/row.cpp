#include "query/row.h"

#include <cstring>
#include <stdexcept>

#include "common/bytes.h"
#include "serde/batch.h"

namespace hamr::query {

const char* col_type_name(ColType type) {
  switch (type) {
    case ColType::kI64: return "i64";
    case ColType::kF64: return "f64";
    case ColType::kStr: return "str";
  }
  return "?";
}

Value Value::of(int64_t v) {
  Value value;
  value.type = ColType::kI64;
  value.i = v;
  return value;
}

Value Value::of(double v) {
  Value value;
  value.type = ColType::kF64;
  value.f = v;
  return value;
}

Value Value::of(std::string v) {
  Value value;
  value.type = ColType::kStr;
  value.s = std::move(v);
  return value;
}

int64_t Value::as_i64() const {
  if (type != ColType::kI64) throw std::invalid_argument("value is not i64");
  return i;
}

double Value::as_f64() const {
  if (type != ColType::kF64) throw std::invalid_argument("value is not f64");
  return f;
}

const std::string& Value::as_str() const {
  if (type != ColType::kStr) throw std::invalid_argument("value is not str");
  return s;
}

bool Value::operator==(const Value& other) const {
  if (type != other.type) return false;
  switch (type) {
    case ColType::kI64: return i == other.i;
    case ColType::kF64: {
      uint64_t a, b;
      std::memcpy(&a, &f, 8);
      std::memcpy(&b, &other.f, 8);
      return a == b;
    }
    case ColType::kStr: return s == other.s;
  }
  return false;
}

int Schema::index_of(std::string_view name) const {
  for (size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].name == name) return static_cast<int>(c);
  }
  return -1;
}

namespace {

void encode_value(const Value& value, ColType expect, serde::Writer* writer) {
  if (value.type != expect) {
    throw std::invalid_argument(std::string("row value is ") +
                                col_type_name(value.type) + ", schema says " +
                                col_type_name(expect));
  }
  switch (expect) {
    case ColType::kI64:
      writer->put_zigzag(value.i);
      break;
    case ColType::kF64:
      writer->put_double(value.f);
      break;
    case ColType::kStr:
      writer->put_bytes(value.s);
      break;
  }
}

Value decode_value(ColType type, serde::Reader* reader) {
  switch (type) {
    case ColType::kI64: return Value::of(reader->get_zigzag());
    case ColType::kF64: return Value::of(reader->get_double());
    case ColType::kStr: return Value::of(std::string(reader->get_bytes()));
  }
  throw serde::DecodeError("unknown column type");
}

}  // namespace

void Schema::encode_row(const Row& row, serde::Writer* writer) const {
  if (row.size() != cols.size()) {
    throw std::invalid_argument("row arity " + std::to_string(row.size()) +
                                " vs schema arity " + std::to_string(cols.size()));
  }
  for (size_t c = 0; c < cols.size(); ++c) {
    encode_value(row[c], cols[c].type, writer);
  }
}

std::string Schema::encode_row(const Row& row) const {
  ByteBuffer buf;
  serde::Writer writer(buf);
  encode_row(row, &writer);
  return std::string(buf.view());
}

Row Schema::decode_row(serde::Reader* reader) const {
  Row row;
  row.reserve(cols.size());
  for (const Column& col : cols) row.push_back(decode_value(col.type, reader));
  return row;
}

Row Schema::decode_row(std::string_view bytes) const {
  serde::Reader reader(bytes);
  Row row = decode_row(&reader);
  if (!reader.at_end()) {
    throw serde::DecodeError("trailing bytes after row: " +
                             std::to_string(reader.remaining()));
  }
  return row;
}

void Schema::encode_row_block(const Row* rows, size_t count,
                              serde::Writer* writer) const {
  for (size_t i = 0; i < count; ++i) {
    if (rows[i].size() != cols.size()) {
      throw std::invalid_argument("row arity " + std::to_string(rows[i].size()) +
                                  " vs schema arity " +
                                  std::to_string(cols.size()));
    }
  }
  writer->put_varint(count);
  std::vector<uint64_t> u64s;
  std::vector<double> f64s;
  std::vector<std::string_view> views;
  for (size_t c = 0; c < cols.size(); ++c) {
    const ColType type = cols[c].type;
    for (size_t i = 0; i < count; ++i) {
      if (rows[i][c].type != type) {
        throw std::invalid_argument(std::string("row value is ") +
                                    col_type_name(rows[i][c].type) +
                                    ", schema says " + col_type_name(type));
      }
    }
    switch (type) {
      case ColType::kI64:
        u64s.clear();
        u64s.reserve(count);
        for (size_t i = 0; i < count; ++i) {
          u64s.push_back(static_cast<uint64_t>(rows[i][c].i));
        }
        serde::put_u64_run(*writer, u64s);
        break;
      case ColType::kF64:
        f64s.clear();
        f64s.reserve(count);
        for (size_t i = 0; i < count; ++i) f64s.push_back(rows[i][c].f);
        serde::put_f64_run(*writer, f64s);
        break;
      case ColType::kStr:
        views.clear();
        views.reserve(count);
        for (size_t i = 0; i < count; ++i) views.push_back(rows[i][c].s);
        serde::put_string_run(*writer, views);
        break;
    }
  }
}

std::string Schema::encode_row_block(const std::vector<Row>& rows) const {
  ByteBuffer buf;
  serde::Writer writer(buf);
  encode_row_block(rows.data(), rows.size(), &writer);
  return std::string(buf.view());
}

std::vector<Row> Schema::decode_row_block(std::string_view bytes) const {
  serde::Reader reader(bytes);
  const uint64_t count = reader.get_varint();
  std::vector<Row> rows(count);
  for (uint64_t i = 0; i < count; ++i) rows[i].reserve(cols.size());
  std::vector<uint64_t> u64s;
  std::vector<double> f64s;
  std::vector<std::string_view> views;
  for (const Column& col : cols) {
    switch (col.type) {
      case ColType::kI64:
        u64s.clear();
        serde::get_u64_run(reader, &u64s);
        if (u64s.size() != count) throw serde::DecodeError("i64 run count");
        for (uint64_t i = 0; i < count; ++i) {
          rows[i].push_back(Value::of(static_cast<int64_t>(u64s[i])));
        }
        break;
      case ColType::kF64:
        f64s.clear();
        serde::get_f64_run(reader, &f64s);
        if (f64s.size() != count) throw serde::DecodeError("f64 run count");
        for (uint64_t i = 0; i < count; ++i) {
          rows[i].push_back(Value::of(f64s[i]));
        }
        break;
      case ColType::kStr:
        views.clear();
        serde::get_string_run(reader, &views);
        if (views.size() != count) throw serde::DecodeError("str run count");
        for (uint64_t i = 0; i < count; ++i) {
          rows[i].push_back(Value::of(std::string(views[i])));
        }
        break;
    }
  }
  if (!reader.at_end()) {
    throw serde::DecodeError("trailing bytes after row block: " +
                             std::to_string(reader.remaining()));
  }
  return rows;
}

std::string Schema::to_string() const {
  std::string out;
  for (const Column& col : cols) {
    if (!out.empty()) out += ", ";
    out += col.name;
    out += ':';
    out += col_type_name(col.type);
  }
  return out;
}

void encode_key_value(const Value& value, serde::Writer* writer) {
  writer->put_u8(static_cast<uint8_t>(value.type));
  encode_value(value, value.type, writer);
}

std::string encode_key(const Row& row, const std::vector<uint32_t>& cols) {
  ByteBuffer buf;
  serde::Writer writer(buf);
  for (uint32_t c : cols) encode_key_value(row.at(c), &writer);
  return std::string(buf.view());
}

Row decode_key(std::string_view bytes, const std::vector<ColType>& types) {
  serde::Reader reader(bytes);
  Row row;
  row.reserve(types.size());
  for (ColType type : types) {
    const uint8_t tag = reader.get_u8();
    if (tag != static_cast<uint8_t>(type)) {
      throw serde::DecodeError("key type tag mismatch");
    }
    row.push_back(decode_value(type, &reader));
  }
  if (!reader.at_end()) throw serde::DecodeError("trailing bytes after key");
  return row;
}

std::string to_hex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace hamr::query
