#include "query/planner.h"

#include <stdexcept>
#include <utility>

#include "cache/scan_loader.h"
#include "ir/lower.h"
#include "ir/passes.h"
#include "query/exec.h"
#include "serde/batch.h"

namespace hamr::query {

namespace {

// Cache dataset name for a staged table. Deliberately tag-free: the tag is
// per-query, and the whole point is sharing one staging across queries.
std::string staged_dataset_name(const std::string& table) {
  return "query/staged/" + table;
}

// Publishes a table's shards to the dataset cache: record value = one
// encode_row_block frame, sharded exactly like the file path (row i on node
// i mod nodes). Returns the pinned dataset, or null if the commit lost an
// invalidation race (caller falls back to file staging).
std::shared_ptr<const cache::Dataset> publish_staged_table(
    cache::DatasetCache& cache, const Table& table, const std::string& name,
    uint32_t nodes) {
  cache::PublishOptions options;
  options.stamp = table.rows.size();
  auto writer = cache.begin(staged_dataset_name(name), options);
  for (uint32_t n = 0; n < nodes; ++n) {
    const std::string shard = encode_table_shard(table, n, nodes);
    std::string_view view = shard;
    size_t pos = 0;
    std::vector<std::string_view> blocks;
    while (serde::get_framed_run(view, &pos, 1, &blocks) != 0) {
      writer->append(n, "", blocks[0]);
      blocks.clear();
    }
  }
  if (!writer->commit()) return nullptr;
  return cache.pin(staged_dataset_name(name), options.stamp);
}

}  // namespace

StagedTables stage_tables(cluster::Cluster& cluster, const Catalog& catalog,
                          const std::vector<std::string>& tables,
                          const std::string& tag, cache::DatasetCache* cache) {
  StagedTables staged;
  staged.prefix = "input/query/" + tag + "/";
  staged.nodes = cluster.size();
  for (const std::string& name : tables) {
    const Table& table = catalog.at(name);
    if (cache != nullptr) {
      // The stamp pins the dataset to this table's current cardinality: a
      // re-loaded catalog with different rows misses and re-publishes.
      std::shared_ptr<const cache::Dataset> dataset =
          cache->pin(staged_dataset_name(name), table.rows.size());
      if (!dataset) {
        dataset = publish_staged_table(*cache, table, name, staged.nodes);
      }
      if (dataset) {
        std::vector<uint64_t>& bytes = staged.shard_bytes[name];
        bytes.resize(staged.nodes);
        for (uint32_t n = 0; n < staged.nodes; ++n) {
          bytes[n] = dataset->shard(n).bytes;
        }
        staged.cached[name] = std::move(dataset);
        continue;
      }
      // Commit lost an invalidation race: stage on disk like the cold path.
    }
    std::vector<uint64_t>& bytes = staged.shard_bytes[name];
    bytes.resize(staged.nodes);
    for (uint32_t n = 0; n < staged.nodes; ++n) {
      const std::string shard = encode_table_shard(table, n, staged.nodes);
      bytes[n] = shard.size();
      cluster.node(n).store().write_file(staged.path_of(name), shard);
    }
  }
  return staged;
}

namespace {

// Recursive lowering context: the IR graph under construction plus the
// staged-table map for split generation.
struct LowerCtx {
  const Catalog& catalog;
  const StagedTables& staged;
  ir::Graph graph;
};

// Type tag of a producer's hand-off, from how its consumer wants rows: the
// IR verifier then proves every stage receives the encoding it decodes.
ir::TypeTag tag_of(const EmitSpec& emit) {
  switch (emit.mode) {
    case EmitSpec::Mode::kLocalRow:
      return {"", "row"};
    case EmitSpec::Mode::kJoinSide:
      return {"join-key", "side-row"};
    case EmitSpec::Mode::kGroupState:
      return {"group-key", "agg-state"};
  }
  return {};
}

ir::NodeId lower_node(const Plan& plan, EmitSpec emit, LowerCtx& ctx);

Schema schema_of(const Plan& plan, const Catalog& catalog) {
  return output_schema(plan, catalog);
}

ir::NodeId lower_scan_chain(const Plan& base, RowPipeline pipeline,
                            EmitSpec emit, LowerCtx& ctx) {
  auto compiled = std::make_shared<ScanCompiled>();
  compiled->table_schema = ctx.catalog.at(base.table).schema;
  compiled->pipeline = std::move(pipeline);
  const ir::TypeTag out = tag_of(emit);
  compiled->emit = std::move(emit);

  // Cache-resident staging: scan the pinned dataset in place. Placement is
  // inherited (split n runs on node n, where shard n's blocks live), so the
  // table moves zero bytes between queries of a session.
  auto cached = ctx.staged.cached.find(base.table);
  if (cached != ctx.staged.cached.end()) {
    const ir::NodeId loader = ctx.graph.add_source(
        "QueryCachedScan(" + base.table + ")",
        make_cached_scan_loader(compiled, cached->second), out);
    engine::JobInputs scan_inputs;
    cache::add_scan_splits(&scan_inputs, loader, *cached->second);
    ctx.graph.node(loader).splits = std::move(scan_inputs.splits.at(loader));
    return loader;
  }

  const ir::NodeId loader = ctx.graph.add_source(
      "QueryScan(" + base.table + ")", make_scan_loader(compiled), out);
  const auto& bytes = ctx.staged.shard_bytes.at(base.table);
  for (uint32_t n = 0; n < ctx.staged.nodes; ++n) {
    engine::InputSplit split;
    split.path = ctx.staged.path_of(base.table);
    split.offset = 0;
    split.length = bytes[n];
    split.preferred_node = n;
    ctx.graph.node(loader).splits.push_back(std::move(split));
  }
  return loader;
}

ir::NodeId lower_join(const Plan& plan, EmitSpec emit, LowerCtx& ctx) {
  auto compiled = std::make_shared<JoinCompiled>();
  compiled->left_schema = schema_of(*plan.child, ctx.catalog);
  compiled->right_schema = schema_of(*plan.right, ctx.catalog);
  const ir::TypeTag out = tag_of(emit);
  compiled->emit = std::move(emit);

  const ir::NodeId join =
      ctx.graph.add_reduce("QueryHashJoin", make_join(compiled),
                           {"join-key", "side-row"}, out);

  EmitSpec left_emit;
  left_emit.mode = EmitSpec::Mode::kJoinSide;
  left_emit.schema = compiled->left_schema;
  left_emit.key_cols = plan.left_keys;
  left_emit.side = 0;
  const ir::NodeId left = lower_node(*plan.child, left_emit, ctx);
  ctx.graph.connect(left, join);

  EmitSpec right_emit;
  right_emit.mode = EmitSpec::Mode::kJoinSide;
  right_emit.schema = compiled->right_schema;
  right_emit.key_cols = plan.right_keys;
  right_emit.side = 1;
  const ir::NodeId right = lower_node(*plan.right, right_emit, ctx);
  ctx.graph.connect(right, join);
  return join;
}

ir::NodeId lower_group_by(const Plan& plan, EmitSpec emit, LowerCtx& ctx) {
  auto g = std::make_shared<GroupCompiled>();
  g->key_cols = plan.keys;
  g->aggs = plan.aggs;
  g->in_schema = schema_of(*plan.child, ctx.catalog);
  g->out_schema = schema_of(plan, ctx.catalog);
  for (uint32_t k : plan.keys) g->key_types.push_back(g->in_schema.cols[k].type);

  const ir::TypeTag out = tag_of(emit);
  const ir::NodeId group =
      ctx.graph.add_combine("QueryGroupBy", make_group_by(g, std::move(emit)),
                            {"group-key", "agg-state"}, out);
  // Sender-side combining (placed by the place_combiner pass): single-row
  // states merge into per-key partials before bins are packed, so hot keys
  // cross the wire pre-aggregated.
  ctx.graph.node(group).combinable = true;

  EmitSpec child_emit;
  child_emit.mode = EmitSpec::Mode::kGroupState;
  child_emit.schema = g->in_schema;
  child_emit.group = g;
  const ir::NodeId child = lower_node(*plan.child, child_emit, ctx);
  ctx.graph.connect(child, group);
  return group;
}

ir::NodeId lower_node(const Plan& plan, EmitSpec emit, LowerCtx& ctx) {
  // Peel the filter/project chain above the next shuffle (or scan): the
  // steps fuse into whatever flowlet produces the chain's input rows.
  RowPipeline pipeline;
  const Plan* node = &plan;
  while (node->kind == Plan::Kind::kFilter ||
         node->kind == Plan::Kind::kProject) {
    RowPipeline::Step step;
    if (node->kind == Plan::Kind::kFilter) {
      step.is_filter = true;
      step.pred = node->pred;
    } else {
      step.cols = node->cols;
    }
    pipeline.steps.insert(pipeline.steps.begin(), std::move(step));
    node = node->child.get();
  }

  switch (node->kind) {
    case Plan::Kind::kScan:
      return lower_scan_chain(*node, std::move(pipeline), std::move(emit), ctx);

    case Plan::Kind::kJoin:
    case Plan::Kind::kGroupBy: {
      const bool is_join = node->kind == Plan::Kind::kJoin;
      if (pipeline.steps.empty()) {
        return is_join ? lower_join(*node, std::move(emit), ctx)
                       : lower_group_by(*node, std::move(emit), ctx);
      }
      // Map fed over a local edge: the base's output rows are already
      // partitioned however its own shuffle left them, and filter/project
      // are row-local, so no network hop is needed. The fuse_maps pass then
      // folds it into the producing stage's task body.
      auto compiled = std::make_shared<MapCompiled>();
      compiled->in_schema = schema_of(*node, ctx.catalog);
      compiled->pipeline = std::move(pipeline);
      const ir::TypeTag out = tag_of(emit);
      compiled->emit = std::move(emit);
      const ir::NodeId map = ctx.graph.add_map(
          "QueryFusedMap", make_fused_map(compiled), {"", "row"}, out);

      EmitSpec base_emit;
      base_emit.mode = EmitSpec::Mode::kLocalRow;
      base_emit.schema = compiled->in_schema;
      const ir::NodeId base = is_join ? lower_join(*node, base_emit, ctx)
                                      : lower_group_by(*node, base_emit, ctx);
      ctx.graph.connect(base, map, ir::local_attrs());
      return map;
    }

    case Plan::Kind::kFilter:
    case Plan::Kind::kProject:
      break;  // unreachable: peeled above
  }
  throw std::invalid_argument("unreachable plan kind in lowering");
}

}  // namespace

ir::Graph lower_ir(const Plan& plan, const Catalog& catalog,
                   const StagedTables& staged, const std::string& tag,
                   std::string* out_prefix_out) {
  output_schema(plan, catalog);  // validates the tree
  const std::string out_prefix = "out/query/" + tag + "/";
  if (out_prefix_out != nullptr) *out_prefix_out = out_prefix;

  LowerCtx ctx{catalog, staged, {}};
  const ir::NodeId sink =
      ctx.graph.add_sink("QuerySink", make_sink(out_prefix), {"", "row"});

  EmitSpec top_emit;
  top_emit.mode = EmitSpec::Mode::kLocalRow;
  top_emit.schema = output_schema(plan, catalog);
  const ir::NodeId top = lower_node(plan, top_emit, ctx);
  ctx.graph.connect(top, sink, ir::local_attrs());
  return ctx.graph;
}

Lowered lower(const Plan& plan, const Catalog& catalog,
              const StagedTables& staged, const std::string& tag) {
  Lowered lowered;
  lowered.out_schema = output_schema(plan, catalog);  // validates the tree

  ir::Graph graph =
      ir::optimize(lower_ir(plan, catalog, staged, tag, &lowered.out_prefix));
  ir::Lowered backend = ir::lower(graph);
  lowered.graph = std::move(backend.graph);
  lowered.inputs = std::move(backend.inputs);
  return lowered;
}

std::string collect_output_payload(cluster::Cluster& cluster,
                                   const std::string& out_prefix) {
  std::string payload;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    auto result = cluster.node(n).store().read_file(
        out_prefix + "node" + std::to_string(n));
    if (result.ok()) payload += result.value();
  }
  return payload;
}

std::vector<Row> decode_payload(const Schema& schema,
                                std::string_view payload) {
  std::vector<Row> rows;
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) eol = payload.size();
    if (eol > pos) {
      rows.push_back(
          schema.decode_row(from_hex(payload.substr(pos, eol - pos))));
    }
    pos = eol + 1;
  }
  return rows;
}

std::vector<Row> run_on_engine(engine::Engine& engine, const Plan& plan,
                               const Catalog& catalog, const std::string& tag,
                               cache::DatasetCache* cache) {
  // `staged` holds the pins through the run, keeping cached tables resident.
  const StagedTables staged =
      stage_tables(engine.cluster(), catalog, scan_tables(plan), tag, cache);
  Lowered lowered = lower(plan, catalog, staged, tag);
  engine.run(lowered.graph, lowered.inputs);
  return decode_payload(
      lowered.out_schema,
      collect_output_payload(engine.cluster(), lowered.out_prefix));
}

SubmittedQuery submit_query(service::JobService& service,
                            cluster::Cluster& cluster, const Plan& plan,
                            const Catalog& catalog,
                            const service::JobSpec& spec,
                            const std::string& tag,
                            cache::DatasetCache* cache) {
  const StagedTables staged =
      stage_tables(cluster, catalog, scan_tables(plan), tag, cache);
  Lowered lowered = lower(plan, catalog, staged, tag);

  service::JobWork work;
  work.graph = std::move(lowered.graph);
  work.inputs = std::move(lowered.inputs);
  // The service holds the pins until the job is terminal: eviction cannot
  // reclaim a staged table out from under a queued or running query.
  for (const auto& [table, dataset] : staged.cached) {
    work.pins.push_back(dataset);
  }
  const std::string out_prefix = lowered.out_prefix;
  work.collect = [out_prefix](engine::Engine& engine) {
    return collect_output_payload(engine.cluster(), out_prefix);
  };

  SubmittedQuery submitted;
  submitted.out_schema = std::move(lowered.out_schema);
  submitted.ticket = service.submit(spec, std::move(work));
  return submitted;
}

}  // namespace hamr::query
