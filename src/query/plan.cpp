#include "query/plan.h"

#include <algorithm>
#include <stdexcept>

namespace hamr::query {

const Table& Catalog::at(const std::string& name) const {
  auto it = tables.find(name);
  if (it == tables.end()) {
    throw std::invalid_argument("unknown table: " + name);
  }
  return it->second;
}

Expr Expr::cmp(uint32_t col, CmpOp op, Value literal) {
  Expr e;
  e.kind = Kind::kCmp;
  e.col = col;
  e.op = op;
  e.literal = std::move(literal);
  return e;
}

Expr Expr::and_of(std::vector<Expr> children) {
  Expr e;
  e.kind = Kind::kAnd;
  e.children = std::move(children);
  return e;
}

Expr Expr::or_of(std::vector<Expr> children) {
  Expr e;
  e.kind = Kind::kOr;
  e.children = std::move(children);
  return e;
}

Expr Expr::not_of(Expr child) {
  Expr e;
  e.kind = Kind::kNot;
  e.children.push_back(std::move(child));
  return e;
}

namespace {

template <typename T>
bool compare(CmpOp op, const T& a, const T& b) {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace

bool eval_predicate(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case Expr::Kind::kCmp: {
      const Value& v = row.at(expr.col);
      switch (expr.literal.type) {
        case ColType::kI64: return compare(expr.op, v.as_i64(), expr.literal.i);
        case ColType::kF64: return compare(expr.op, v.as_f64(), expr.literal.f);
        case ColType::kStr: return compare(expr.op, v.as_str(), expr.literal.s);
      }
      return false;
    }
    case Expr::Kind::kAnd:
      for (const Expr& c : expr.children) {
        if (!eval_predicate(c, row)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const Expr& c : expr.children) {
        if (eval_predicate(c, row)) return true;
      }
      return false;
    case Expr::Kind::kNot:
      return !eval_predicate(expr.children.front(), row);
  }
  return false;
}

void validate_expr(const Expr& expr, const Schema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kCmp: {
      if (expr.col >= schema.size()) {
        throw std::invalid_argument("predicate column " +
                                    std::to_string(expr.col) +
                                    " out of range for {" + schema.to_string() + "}");
      }
      if (schema.cols[expr.col].type != expr.literal.type) {
        throw std::invalid_argument(
            std::string("predicate literal is ") +
            col_type_name(expr.literal.type) + " but column " +
            schema.cols[expr.col].name + " is " +
            col_type_name(schema.cols[expr.col].type));
      }
      return;
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr:
      if (expr.children.empty()) {
        throw std::invalid_argument("and/or needs at least one child");
      }
      for (const Expr& c : expr.children) validate_expr(c, schema);
      return;
    case Expr::Kind::kNot:
      if (expr.children.size() != 1) {
        throw std::invalid_argument("not needs exactly one child");
      }
      validate_expr(expr.children.front(), schema);
      return;
  }
}

PlanPtr scan(std::string table) {
  auto p = std::make_unique<Plan>();
  p->kind = Plan::Kind::kScan;
  p->table = std::move(table);
  return p;
}

PlanPtr filter(PlanPtr child, Expr pred) {
  auto p = std::make_unique<Plan>();
  p->kind = Plan::Kind::kFilter;
  p->child = std::move(child);
  p->pred = std::move(pred);
  return p;
}

PlanPtr project(PlanPtr child, std::vector<uint32_t> cols) {
  auto p = std::make_unique<Plan>();
  p->kind = Plan::Kind::kProject;
  p->child = std::move(child);
  p->cols = std::move(cols);
  return p;
}

PlanPtr hash_join(PlanPtr left, PlanPtr right, uint32_t left_key,
                  uint32_t right_key) {
  return hash_join(std::move(left), std::move(right),
                   std::vector<uint32_t>{left_key},
                   std::vector<uint32_t>{right_key});
}

PlanPtr hash_join(PlanPtr left, PlanPtr right, std::vector<uint32_t> left_keys,
                  std::vector<uint32_t> right_keys) {
  auto p = std::make_unique<Plan>();
  p->kind = Plan::Kind::kJoin;
  p->child = std::move(left);
  p->right = std::move(right);
  p->left_keys = std::move(left_keys);
  p->right_keys = std::move(right_keys);
  return p;
}

PlanPtr group_by(PlanPtr child, std::vector<uint32_t> keys,
                 std::vector<AggSpec> aggs) {
  auto p = std::make_unique<Plan>();
  p->kind = Plan::Kind::kGroupBy;
  p->child = std::move(child);
  p->keys = std::move(keys);
  p->aggs = std::move(aggs);
  return p;
}

namespace {

void check_col(uint32_t col, const Schema& schema, const char* what) {
  if (col >= schema.size()) {
    throw std::invalid_argument(std::string(what) + " column " +
                                std::to_string(col) + " out of range for {" +
                                schema.to_string() + "}");
  }
}

std::string agg_col_name(const AggSpec& agg, const Schema& in) {
  switch (agg.kind) {
    case AggKind::kCount: return "cnt";
    case AggKind::kSum: return "sum_" + in.cols[agg.col].name;
    case AggKind::kMin: return "min_" + in.cols[agg.col].name;
    case AggKind::kMax: return "max_" + in.cols[agg.col].name;
  }
  return "?";
}

}  // namespace

Schema output_schema(const Plan& plan, const Catalog& catalog) {
  switch (plan.kind) {
    case Plan::Kind::kScan:
      return catalog.at(plan.table).schema;

    case Plan::Kind::kFilter: {
      Schema in = output_schema(*plan.child, catalog);
      validate_expr(plan.pred, in);
      return in;
    }

    case Plan::Kind::kProject: {
      Schema in = output_schema(*plan.child, catalog);
      if (plan.cols.empty()) {
        throw std::invalid_argument("project needs at least one column");
      }
      Schema out;
      for (uint32_t c : plan.cols) {
        check_col(c, in, "project");
        out.cols.push_back(in.cols[c]);
      }
      return out;
    }

    case Plan::Kind::kJoin: {
      Schema left = output_schema(*plan.child, catalog);
      Schema right = output_schema(*plan.right, catalog);
      if (plan.left_keys.empty() ||
          plan.left_keys.size() != plan.right_keys.size()) {
        throw std::invalid_argument(
            "join needs matching, non-empty key column lists (" +
            std::to_string(plan.left_keys.size()) + " vs " +
            std::to_string(plan.right_keys.size()) + ")");
      }
      for (size_t k = 0; k < plan.left_keys.size(); ++k) {
        check_col(plan.left_keys[k], left, "left join key");
        check_col(plan.right_keys[k], right, "right join key");
        if (left.cols[plan.left_keys[k]].type !=
            right.cols[plan.right_keys[k]].type) {
          throw std::invalid_argument(
              "join key pair " + std::to_string(k) + " types differ: " +
              col_type_name(left.cols[plan.left_keys[k]].type) + " vs " +
              col_type_name(right.cols[plan.right_keys[k]].type));
        }
      }
      Schema out;
      for (const Column& c : left.cols) out.cols.push_back({"l." + c.name, c.type});
      for (const Column& c : right.cols) out.cols.push_back({"r." + c.name, c.type});
      return out;
    }

    case Plan::Kind::kGroupBy: {
      Schema in = output_schema(*plan.child, catalog);
      if (plan.keys.empty()) {
        throw std::invalid_argument("group_by needs at least one key column");
      }
      if (plan.aggs.empty()) {
        throw std::invalid_argument("group_by needs at least one aggregate");
      }
      Schema out;
      for (uint32_t k : plan.keys) {
        check_col(k, in, "group key");
        out.cols.push_back(in.cols[k]);
      }
      for (const AggSpec& agg : plan.aggs) {
        if (agg.kind != AggKind::kCount) check_col(agg.col, in, "aggregate");
        ColType out_type = ColType::kI64;
        switch (agg.kind) {
          case AggKind::kCount:
            out_type = ColType::kI64;
            break;
          case AggKind::kSum: {
            const ColType t = in.cols[agg.col].type;
            if (t == ColType::kStr) {
              throw std::invalid_argument("sum over string column " +
                                          in.cols[agg.col].name);
            }
            out_type = t;
            break;
          }
          case AggKind::kMin:
          case AggKind::kMax:
            out_type = in.cols[agg.col].type;
            break;
        }
        out.cols.push_back({agg_col_name(agg, in), out_type});
      }
      return out;
    }
  }
  throw std::invalid_argument("unknown plan kind");
}

namespace {

void collect_tables(const Plan& plan, std::vector<std::string>* out) {
  if (plan.kind == Plan::Kind::kScan) {
    if (std::find(out->begin(), out->end(), plan.table) == out->end()) {
      out->push_back(plan.table);
    }
    return;
  }
  if (plan.child) collect_tables(*plan.child, out);
  if (plan.right) collect_tables(*plan.right, out);
}

}  // namespace

std::vector<std::string> scan_tables(const Plan& plan) {
  std::vector<std::string> out;
  collect_tables(plan, &out);
  return out;
}

}  // namespace hamr::query
