// Quickstart: word count on HAMR in ~60 lines of application code.
//
// Demonstrates the essentials of the flowlet API:
//   1. bring up a (simulated) cluster and deploy an Engine on it;
//   2. define flowlets: a built-in TextLoader, a Map, and a PartialReduce;
//   3. wire them into a DAG and submit the job with input splits;
//   4. read the results from the nodes' local output files.
//
// Run:  ./examples/quickstart [--nodes=4] [--bytes=2000000]
#include <cstdio>

#include "apps/common.h"
#include "apps/counting.h"
#include "common/flags.h"
#include "engine/loaders.h"
#include "gen/generators.h"

using namespace hamr;

namespace {

// Splits each input line into words and emits (word, "1").
class Tokenize : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    for (std::string_view word : apps::tokenize(record.value)) {
      ctx.emit(0, word, "1");
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "quickstart - word count on HAMR\n"
              "  --nodes=N   cluster size (default 4)\n"
              "  --bytes=N   input size (default 2 MB)");

  // 1. A small simulated cluster with realistic disk/NIC cost models, plus
  //    the engine deployed on it.
  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  apps::BenchEnv env = apps::BenchEnv::make(cluster_cfg);

  // 2. Generate some Zipfian text and stage it onto each node's local disk.
  gen::TextSpec spec;
  spec.total_bytes = static_cast<uint64_t>(flags.get_int("bytes", 2'000'000));
  std::vector<std::string> shards;
  for (uint32_t i = 0; i < env.nodes(); ++i) {
    shards.push_back(gen::text_shard(spec, i, env.nodes()));
  }
  const apps::StagedInput input = apps::stage_input(env, "quickstart", shards);

  // 3. Build the DAG: loader -> tokenize -> count (partial reduce).
  //    The loader edge is local (data is processed where its disk lives);
  //    the counting edge partitions by word across the cluster.
  engine::FlowletGraph graph;
  const auto loader = graph.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto tokenize =
      graph.add_map("Tokenize", [] { return std::make_unique<Tokenize>(); });
  const auto count = graph.add_partial_reduce(
      "Count", [] { return std::make_unique<apps::CountSink>("out/quickstart/"); });
  graph.connect(loader, tokenize, engine::local_edge());
  graph.connect(tokenize, count);

  // 4. Run and inspect.
  const engine::JobResult result = env.engine->run(graph, apps::inputs_for(loader, input));
  std::printf("processed %.1f MB in %.3f s (%llu records, %llu bins, "
              "%llu flow-control stalls)\n",
              static_cast<double>(input.total_bytes) / 1e6, result.wall_seconds,
              static_cast<unsigned long long>(result.records_emitted),
              static_cast<unsigned long long>(result.bins_sent),
              static_cast<unsigned long long>(result.flow_control_stalls));

  const auto counts = apps::to_counts(apps::collect_local_kv(*env.cluster, "out/quickstart/"));
  std::printf("distinct words: %zu\n", counts.size());
  int shown = 0;
  for (const auto& [word, count_value] : counts) {
    if (shown++ == 5) break;
    std::printf("  %-12s %llu\n", word.c_str(),
                static_cast<unsigned long long>(count_value));
  }
  return 0;
}
