// Graph analytics example: iterative PageRank over a synthetic web graph,
// exercising HAMR's multi-phase DAGs, the distributed key-value store, and
// in-memory iteration (paper §3.2, Alg. 2).
//
// Iteration 0 builds adjacency lists into node-shared memory; every further
// iteration streams contributions straight out of memory - no disk I/O and
// no job-chaining overhead between iterations. The driver loop checks the
// max rank delta after each iteration and stops at convergence.
//
// Run:  ./examples/graph_analytics [--pages=8192] [--edges=200000]
//       [--max_iterations=10] [--epsilon=1e-6]
#include <algorithm>
#include <cstdio>

#include "apps/common.h"
#include "apps/pagerank.h"
#include "common/flags.h"
#include "gen/generators.h"

using namespace hamr;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "graph_analytics - iterative PageRank on HAMR\n"
              "  --nodes=N           cluster size (default 4)\n"
              "  --pages=N           graph size (default 8192)\n"
              "  --edges=N           edge count (default 200000)\n"
              "  --max_iterations=N  iteration cap (default 10)\n"
              "  --epsilon=F         convergence threshold (default 1e-6)");

  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  apps::BenchEnv env = apps::BenchEnv::make(cluster_cfg);

  gen::WebGraphSpec spec;
  spec.num_pages = static_cast<uint64_t>(flags.get_int("pages", 8192));
  spec.num_edges = static_cast<uint64_t>(flags.get_int("edges", 200000));
  std::vector<std::string> shards;
  for (uint32_t i = 0; i < env.nodes(); ++i) {
    shards.push_back(gen::web_graph_shard(spec, i, env.nodes()));
  }
  const apps::StagedInput input = apps::stage_input(env, "web_graph", shards);
  std::printf("graph: %llu pages, %llu edges (%.1f MB)\n",
              static_cast<unsigned long long>(spec.num_pages),
              static_cast<unsigned long long>(spec.num_edges),
              static_cast<double>(input.total_bytes) / 1e6);

  // Driver loop: one multi-phase job per iteration; adjacency and ranks
  // persist in the node-shared KV store between jobs, so iterations > 0
  // never touch the input file again.
  const double epsilon = flags.get_double("epsilon", 1e-6);
  const auto max_iterations =
      static_cast<uint32_t>(flags.get_int("max_iterations", 10));
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;

  apps::pagerank::clear_pagerank_state(env);
  double total_seconds = 0;
  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    const auto result = apps::pagerank::run_hamr_iteration(env, input, params, iter);
    const double delta = apps::pagerank::max_delta(env);
    total_seconds += result.wall_seconds;
    std::printf("iteration %2u: %.3f s, max delta %.3e%s\n", iter + 1,
                result.wall_seconds, delta,
                iter == 0 ? "  (built adjacency in memory)" : "");
    if (delta < epsilon) {
      std::printf("converged after %u iterations\n", iter + 1);
      break;
    }
  }
  std::printf("total engine time: %.3f s\n", total_seconds);

  // Top pages by final rank (read back from the KV store).
  const auto ranks = apps::pagerank::hamr_ranks(env, params);
  std::vector<std::pair<double, uint64_t>> top;
  top.reserve(ranks.size());
  for (const auto& [page, rank] : ranks) top.emplace_back(rank, page);
  const size_t n = std::min<size_t>(5, top.size());
  std::partial_sort(top.begin(), top.begin() + n, top.end(), std::greater<>());
  std::printf("top pages:\n");
  for (size_t i = 0; i < n; ++i) {
    std::printf("  page %-8llu rank %.6f\n",
                static_cast<unsigned long long>(top[i].second), top[i].first);
  }
  return 0;
}
