// Lambda-architecture example (paper §1: "HAMR fully supports Lambda big
// data architecture by using the same programming and processing model in
// only one computing engine").
//
// Batch layer : a batch job counts words over the historical files on disk.
// Speed layer : a streaming job counts words over a live source.
// Serving     : the driver merges both views into a combined count table.
//
// The two layers use the SAME flowlet classes on the SAME engine - only the
// loader differs (TextLoader vs RateLimitedSource).
//
// Run:  ./examples/lambda_pipeline [--seconds=2]
#include <cstdio>

#include "apps/common.h"
#include "apps/counting.h"
#include "common/flags.h"
#include "common/random.h"
#include "engine/loaders.h"
#include "gen/generators.h"

using namespace hamr;

namespace {

class Tokenize : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    for (std::string_view word : apps::tokenize(record.value)) {
      ctx.emit(0, word, "1");
    }
  }
};

// Live source emitting the same vocabulary as the historical data.
class LiveSource : public engine::RateLimitedSource {
 public:
  LiveSource() : RateLimitedSource(/*records_per_sec=*/5000), zipf_(1000, 0.99) {}

  void make_record(const engine::InputSplit& split, uint64_t index,
                   std::string* key, std::string* value) override {
    Rng rng(split.preferred_node * 31 + index);
    *key = std::to_string(index);
    *value = "w" + std::to_string(zipf_.sample(rng));
  }

 private:
  Zipf zipf_;
};

std::map<std::string, uint64_t> layer_counts(apps::BenchEnv& env,
                                             const std::string& prefix) {
  return apps::to_counts(apps::collect_local_kv(*env.cluster, prefix));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "lambda_pipeline - batch + streaming layers on one engine\n"
              "  --nodes=N    cluster size (default 4)\n"
              "  --seconds=F  speed-layer duration (default 2)");

  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  apps::BenchEnv env = apps::BenchEnv::make(cluster_cfg);

  // ---- Batch layer: historical files on the node-local disks. ----
  gen::TextSpec spec;
  spec.total_bytes = 2'000'000;
  spec.vocab = 1000;
  std::vector<std::string> shards;
  for (uint32_t i = 0; i < env.nodes(); ++i) {
    shards.push_back(gen::text_shard(spec, i, env.nodes()));
  }
  const apps::StagedInput history = apps::stage_input(env, "history", shards);

  engine::FlowletGraph batch;
  const auto batch_loader = batch.add_loader(
      "TextLoader", [] { return std::make_unique<engine::TextLoader>(); });
  const auto batch_tokenize =
      batch.add_map("Tokenize", [] { return std::make_unique<Tokenize>(); });
  const auto batch_count = batch.add_partial_reduce(
      "Count", [] { return std::make_unique<apps::CountSink>("out/lambda_batch/"); });
  batch.connect(batch_loader, batch_tokenize, engine::local_edge());
  batch.connect(batch_tokenize, batch_count);

  const auto batch_result =
      env.engine->run(batch, apps::inputs_for(batch_loader, history));
  std::printf("batch layer: %.1f MB of history in %.3f s\n",
              static_cast<double>(history.total_bytes) / 1e6,
              batch_result.wall_seconds);

  // ---- Speed layer: same flowlets, streaming source, same engine. ----
  engine::FlowletGraph speed;
  const auto live = speed.add_loader(
      "LiveSource", [] { return std::make_unique<LiveSource>(); });
  const auto speed_tokenize =
      speed.add_map("Tokenize", [] { return std::make_unique<Tokenize>(); });
  const auto speed_count = speed.add_partial_reduce(
      "Count", [] { return std::make_unique<apps::CountSink>("out/lambda_speed/"); });
  speed.connect(live, speed_tokenize, engine::local_edge());
  speed.connect(speed_tokenize, speed_count);

  engine::JobInputs live_inputs;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    engine::InputSplit split;
    split.preferred_node = n;
    live_inputs.add(live, split);
  }
  const double seconds = flags.get_double("seconds", 2);
  const auto speed_result = env.engine->run_streaming(
      speed, live_inputs, from_seconds(seconds), /*window_every=*/millis(0));
  std::printf("speed layer: streamed %.1f s in %.3f s wall\n", seconds,
              speed_result.wall_seconds);

  // ---- Serving layer: merge both views. ----
  const auto batch_view = layer_counts(env, "out/lambda_batch/");
  const auto speed_view = layer_counts(env, "out/lambda_speed/");
  std::map<std::string, uint64_t> merged = batch_view;
  for (const auto& [word, count] : speed_view) merged[word] += count;

  uint64_t batch_total = 0, speed_total = 0;
  for (const auto& [w, c] : batch_view) batch_total += c;
  for (const auto& [w, c] : speed_view) speed_total += c;
  std::printf("serving layer: %zu words | batch occurrences %llu | live "
              "occurrences %llu | merged view ready\n",
              merged.size(), static_cast<unsigned long long>(batch_total),
              static_cast<unsigned long long>(speed_total));
  std::printf("hottest word: %s\n",
              std::max_element(merged.begin(), merged.end(),
                               [](const auto& a, const auto& b) {
                                 return a.second < b.second;
                               })
                  ->first.c_str());
  return 0;
}
