// Job server: the resident, multi-tenant face of HAMR.
//
// One process brings up a simulated cluster, deploys a JobService with two
// executor lanes on it, and exposes the submit/poll/cancel/result verbs over
// real TCP sockets. A handful of client threads then behave like impatient
// tenants: they fire mixed batch word counts and short streaming jobs at the
// server, a burst at a time, and take whatever admission control gives them.
//
// What to look for in the output:
//   * jobs from different clients overlap in wall-clock time (two lanes);
//   * the bounded queue sheds the burst's tail with explicit REJECTED
//     tickets instead of blocking anyone;
//   * the closing metrics snapshot counts every outcome.
//
// Run:  ./examples/job_server [--nodes=4] [--lanes=2] [--clients=3]
//       [--jobs=6] [--max_queued=4]
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/flags.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/tcp_transport.h"
#include "obs/metrics_snapshot.h"
#include "service/job_rpc.h"
#include "service/job_service.h"

using namespace hamr;
using namespace hamr::engine;
using namespace hamr::service;

namespace {

// Batch source: `user_tag` synthetic words per split, Zipf-ish skew via the
// modulus so the reduce has some shape to it.
class WordLoader : public LoaderFlowlet {
 public:
  bool load_chunk(const InputSplit& split, uint64_t* cursor,
                  Context& ctx) override {
    const uint64_t end = std::min(split.user_tag, *cursor + 2048);
    for (uint64_t i = *cursor; i < end; ++i) {
      const uint64_t id = split.offset + i;
      ctx.emit(0, "word" + std::to_string(id % (1 + id % 97)), "1");
    }
    *cursor = end;
    return end < split.user_tag;
  }
};

// Streaming source: keeps emitting ticks until the engine stops the stream.
class TickerLoader : public LoaderFlowlet {
 public:
  bool load_chunk(const InputSplit& split, uint64_t* cursor, Context& ctx) override {
    if (ctx.stream_stopping()) return false;
    for (int i = 0; i < 64; ++i) {
      ctx.emit(0, "tick" + std::to_string((*cursor + i) % 8),
               std::to_string(split.preferred_node));
    }
    *cursor += 64;
    std::this_thread::sleep_for(millis(1));
    return true;
  }
};

class CountReduce : public ReduceFlowlet {
 public:
  CountReduce(std::shared_ptr<std::atomic<uint64_t>> keys,
              std::shared_ptr<std::atomic<uint64_t>> records)
      : keys_(std::move(keys)), records_(std::move(records)) {}

  void reduce(std::string_view, const std::vector<std::string_view>& values,
              Context&) override {
    keys_->fetch_add(1);
    records_->fetch_add(values.size());
  }

 private:
  std::shared_ptr<std::atomic<uint64_t>> keys_;
  std::shared_ptr<std::atomic<uint64_t>> records_;
};

// Builds loader -> count-reduce work over every node; the payload reports
// what the reduce saw.
template <typename Loader>
JobWork counting_work(uint32_t nodes, uint64_t per_node) {
  auto keys = std::make_shared<std::atomic<uint64_t>>(0);
  auto records = std::make_shared<std::atomic<uint64_t>>(0);
  JobWork w;
  const auto loader =
      w.graph.add_loader("load", [] { return std::make_unique<Loader>(); });
  const auto counts = w.graph.add_reduce("count", [keys, records] {
    return std::make_unique<CountReduce>(keys, records);
  });
  w.graph.connect(loader, counts);
  for (uint32_t n = 0; n < nodes; ++n) {
    InputSplit split;
    split.offset = n * per_node;
    split.user_tag = per_node;
    split.preferred_node = n;
    w.inputs.add(loader, split);
  }
  w.collect = [keys, records](Engine&) {
    return "keys=" + std::to_string(keys->load()) +
           " records=" + std::to_string(records->load());
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "job_server - resident multi-tenant job service over TCP\n"
              "  --nodes=N       cluster size (default 4)\n"
              "  --lanes=N       concurrent executor lanes (default 2)\n"
              "  --clients=N     client threads (default 3)\n"
              "  --jobs=N        jobs per client burst (default 6)\n"
              "  --max_queued=N  admission bound (default 4)");
  const uint32_t nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  const uint32_t lanes = static_cast<uint32_t>(flags.get_int("lanes", 2));
  const uint32_t clients = static_cast<uint32_t>(flags.get_int("clients", 3));
  const int jobs_per_client = static_cast<int>(flags.get_int("jobs", 6));

  // --- server side ---------------------------------------------------------
  cluster::Cluster cluster(cluster::ClusterConfig::fast(nodes));
  ServiceConfig cfg;
  cfg.lanes = lanes;
  cfg.max_queued = static_cast<size_t>(flags.get_int("max_queued", 4));
  cfg.engine = EngineConfig::fast();
  JobService service(cluster, cfg);
  service.register_builder("wordcount", [nodes](const JobSpec& spec) {
    return counting_work<WordLoader>(nodes, std::stoull(spec.args));
  });
  service.register_builder("ticker", [nodes](const JobSpec& spec) {
    JobWork w = counting_work<TickerLoader>(nodes, 1);
    w.stream_duration = millis(std::stoll(spec.args));
    return w;
  });

  // Endpoint 0 serves; endpoints 1..clients submit. All over real sockets.
  net::TcpTransport fabric(clients + 1);
  std::vector<std::unique_ptr<net::Router>> routers;
  std::vector<std::unique_ptr<net::Rpc>> rpcs;
  for (uint32_t i = 0; i <= clients; ++i) {
    routers.push_back(std::make_unique<net::Router>(fabric.endpoint(i)));
    rpcs.push_back(std::make_unique<net::Rpc>(routers[i].get()));
  }
  JobRpcServer server(&service, rpcs[0].get());
  fabric.start();
  std::printf("job server up: %u nodes, %u lanes, queue bound %zu\n", nodes,
              lanes, cfg.max_queued);

  // --- client side ---------------------------------------------------------
  std::mutex print_mu;
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      JobClient client(*rpcs[c + 1], /*server=*/0);
      const std::string tenant = "tenant-" + std::to_string(c);
      std::vector<uint64_t> ids;
      for (int j = 0; j < jobs_per_client; ++j) {
        JobSpec spec;
        spec.tenant = tenant;
        spec.priority = j % 3;
        // Every third job streams for a moment; the rest are batch counts.
        if (j % 3 == 2) {
          spec.job_type = "ticker";
          spec.args = "50";
        } else {
          spec.job_type = "wordcount";
          spec.args = std::to_string(20'000 * (j + 1));
        }
        JobStatus at_submit = JobStatus::kQueued;
        const uint64_t id = client.submit(spec, &at_submit);
        std::lock_guard<std::mutex> lock(print_mu);
        std::printf("  %-9s submit #%llu %-9s prio=%d -> %s\n", tenant.c_str(),
                    static_cast<unsigned long long>(id), spec.job_type.c_str(),
                    spec.priority, to_string(at_submit));
        if (at_submit == JobStatus::kQueued) ids.push_back(id);
      }
      for (const uint64_t id : ids) {
        const JobStatus st = client.wait(id);
        const JobClient::RemoteResult res = client.result(id);
        std::lock_guard<std::mutex> lock(print_mu);
        std::printf("  %-9s job #%llu %-8s %.3fs  %s\n", tenant.c_str(),
                    static_cast<unsigned long long>(id), to_string(st),
                    res.wall_seconds, res.payload.c_str());
      }
    });
  }
  for (auto& t : workers) t.join();
  fabric.stop();

  std::printf("\nservice metrics:\n%s\n",
              obs::MetricsSnapshot::capture(service.metrics()).to_json().c_str());
  return 0;
}
