// Event-time streaming example: the StreamService lifecycle end to end.
//
// Starts an unbounded deterministic event stream through the job service
// (start), watches it run with live per-stream counters (poll), then winds
// it down gracefully (drain) - open windows flush and the stream completes
// like a batch job, its sink output in the ticket payload. Contrast with
// examples/streaming_trending.cpp, which drives run_streaming directly on
// one engine with processing-time windows; this one gets *event-time*
// tumbling windows, watermarks, and the service lifecycle (DESIGN.md §12).
//
// Run:  ./examples/streaming_eventtime [--seconds=2] [--window_ms=50]
//       [--nodes=4] [--lanes=2]
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "common/flags.h"
#include "service/job_service.h"
#include "stream/source.h"
#include "stream/stream_service.h"
#include "stream/window.h"

using namespace hamr;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "streaming_eventtime - StreamService start/poll/drain demo\n"
              "  --seconds=N     wall-clock run time before drain (2)\n"
              "  --window_ms=N   tumbling window size, event time (50)\n"
              "  --nodes=N       cluster nodes (4)\n"
              "  --lanes=N       job-service executor lanes (2)\n");
  const int64_t seconds = flags.get_int("seconds", 2);
  const int64_t window_ms = flags.get_int("window_ms", 50);
  const uint32_t nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));

  cluster::Cluster cluster(cluster::ClusterConfig::fast(nodes));
  service::ServiceConfig cfg;
  cfg.lanes = static_cast<uint32_t>(flags.get_int("lanes", 2));
  cfg.engine = engine::EngineConfig::fast();
  service::JobService jobs(cluster, cfg);
  stream::StreamService streams(jobs);

  // Unbounded generator: event i has ts = i * 200us + bounded jitter, so the
  // watermark advances steadily and windows close while the stream runs.
  stream::GeneratorConfig gen;
  gen.total_events = 0;  // unbounded: runs until drained or stopped
  gen.period_us = 200;
  gen.jitter_us = 2'000;
  gen.events_per_sec = 50'000;  // paced, so poll() has something to watch

  stream::StreamPipeline p;
  p.source = [gen] { return std::make_unique<stream::GeneratorSource>(gen); };
  p.source_options.window.size_us = window_ms * 1000;
  p.source_options.punctuate_every = 1024;
  p.fold = [](std::string_view, std::string_view value, std::string& acc) {
    const uint64_t have = acc.empty() ? 0 : std::stoull(acc);
    acc = std::to_string(have + std::stoull(std::string(value)));
  };

  auto ticket = streams.start(std::move(p), {.job = {.tenant = "demo"}});
  std::printf("stream %llu started (%u nodes, tumbling %lld ms windows)\n\n",
              static_cast<unsigned long long>(ticket->id()), nodes,
              static_cast<long long>(window_ms));

  std::printf("%8s %12s %10s %10s %14s\n", "t", "events", "windows",
              "results", "watermark");
  for (int64_t tick = 0; tick < seconds * 4; ++tick) {
    std::this_thread::sleep_for(millis(250));
    const auto prog = ticket->poll();
    std::printf("%6lldms %12llu %10llu %10llu %12lldus\n", tick * 250 + 250,
                static_cast<unsigned long long>(prog.events_ingested),
                static_cast<unsigned long long>(prog.windows_emitted),
                static_cast<unsigned long long>(prog.results_emitted),
                static_cast<long long>(prog.watermark_us));
  }

  std::printf("\ndraining...\n");
  ticket->drain();
  const service::JobStatus st = ticket->wait();
  const auto prog = ticket->poll();
  std::printf("stream ended %s: %llu events in, %llu windows closed\n",
              service::to_string(st),
              static_cast<unsigned long long>(prog.events_ingested),
              static_cast<unsigned long long>(prog.windows_emitted));

  // The payload is the sink output: sorted "composite-key \t value" lines.
  const std::string out = ticket->payload();
  int shown = 0;
  size_t pos = 0;
  std::printf("\nfirst window results (window end, key, count):\n");
  while (shown < 8 && pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    const std::string_view line(out.data() + pos, nl - pos);
    pos = nl + 1;
    const size_t tab = line.find('\t');
    if (tab == std::string_view::npos) continue;
    const std::string_view key = line.substr(0, tab);
    std::printf("  %10lldus  %.*s = %.*s\n",
                static_cast<long long>(stream::window_key_end(key)),
                static_cast<int>(stream::window_key_user(key).size()),
                stream::window_key_user(key).data(),
                static_cast<int>(line.size() - tab - 1),
                line.data() + tab + 1);
    ++shown;
  }
  return st == service::JobStatus::kDone ? 0 : 1;
}
