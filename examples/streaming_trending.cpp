// Streaming example: trending-words over a live event stream - the paper's
// "streaming processing model subsystem" (Fig. 1) and Lambda-architecture
// claim (one engine, same programming model, batch AND streaming).
//
// A RateLimitedSource on every node synthesizes Zipfian "social media" posts;
// a windowed partial reduce counts word occurrences; every window flush the
// counts flow to a trending sink that keeps a running top-k per node. After
// the configured duration the driver stops the sources and completion
// cascades exactly like a batch job.
//
// Run:  ./examples/streaming_trending [--seconds=3] [--window_ms=500]
//       [--rate=20000]
#include <algorithm>
#include <cstdio>
#include <mutex>

#include "apps/common.h"
#include "apps/counting.h"
#include "common/flags.h"
#include "common/random.h"
#include "engine/loaders.h"
#include "gen/generators.h"

using namespace hamr;

namespace {

// Synthesizes whitespace-separated Zipfian words at a bounded rate.
class PostSource : public engine::RateLimitedSource {
 public:
  explicit PostSource(double posts_per_sec)
      : RateLimitedSource(posts_per_sec, /*records_per_chunk=*/256),
        zipf_(5000, 0.99) {}

  void make_record(const engine::InputSplit& split, uint64_t index,
                   std::string* key, std::string* value) override {
    // Deterministic per-split stream: seed from the split's node.
    Rng rng(split.preferred_node * 977 + index);
    *key = std::to_string(index);
    for (int w = 0; w < 6; ++w) {
      if (w > 0) value->push_back(' ');
      *value += "topic" + std::to_string(zipf_.sample(rng));
    }
  }

 private:
  Zipf zipf_;
};

class TokenizePosts : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    for (std::string_view word : apps::tokenize(record.value)) {
      ctx.emit(0, word, "1");
    }
  }
};

// Windowed counter: the engine flushes the accumulator table downstream on
// every punctuation (run_streaming's window_every), then on completion.
class WindowCount : public engine::PartialReduceFlowlet {
 public:
  void fold(std::string_view, std::string_view value, std::string& acc) override {
    acc = std::to_string(apps::parse_count(acc) + apps::parse_count(value));
  }
};

// Maintains a running top-k of (word -> max single-window count).
class TrendingSink : public engine::MapFlowlet {
 public:
  void process(const engine::KvPair& record, engine::Context& ctx) override {
    (void)ctx;
    const uint64_t count = apps::parse_count(record.value);
    std::lock_guard<std::mutex> lock(mu_);
    auto& best = peak_[std::string(record.key)];
    best = std::max(best, count);
    ++windows_seen_;
  }

  void finish(engine::Context& ctx) override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<uint64_t, std::string>> ranked;
    for (const auto& [word, peak] : peak_) ranked.emplace_back(peak, word);
    std::sort(ranked.rbegin(), ranked.rend());
    std::string out;
    const size_t n = std::min<size_t>(5, ranked.size());
    for (size_t i = 0; i < n; ++i) {
      out += ranked[i].second + "\t" + std::to_string(ranked[i].first) + "\n";
    }
    ctx.local_store().write_file(
        "out/trending/node" + std::to_string(ctx.node()), out);
  }

 private:
  std::mutex mu_;
  std::map<std::string, uint64_t> peak_;
  uint64_t windows_seen_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "streaming_trending - windowed trending words on HAMR streaming\n"
              "  --nodes=N      cluster size (default 4)\n"
              "  --seconds=F    stream duration (default 3)\n"
              "  --window_ms=N  window flush period (default 500)\n"
              "  --rate=N       posts/second per source (default 20000)");

  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  apps::BenchEnv env = apps::BenchEnv::make(cluster_cfg);

  const double rate = flags.get_double("rate", 20000);
  engine::FlowletGraph graph;
  const auto source = graph.add_loader(
      "PostSource", [rate] { return std::make_unique<PostSource>(rate); });
  const auto tokenize = graph.add_map(
      "TokenizePosts", [] { return std::make_unique<TokenizePosts>(); });
  const auto window = graph.add_partial_reduce(
      "WindowCount", [] { return std::make_unique<WindowCount>(); });
  const auto sink = graph.add_map(
      "TrendingSink", [] { return std::make_unique<TrendingSink>(); });
  graph.connect(source, tokenize, engine::local_edge());
  graph.connect(tokenize, window);
  graph.connect(window, sink);

  engine::JobInputs inputs;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    engine::InputSplit split;
    split.preferred_node = n;
    inputs.add(source, split);
  }

  const double seconds = flags.get_double("seconds", 3);
  const auto window_ms = flags.get_int("window_ms", 500);
  std::printf("streaming for %.1f s with %lld ms windows...\n", seconds,
              static_cast<long long>(window_ms));
  const auto result = env.engine->run_streaming(
      graph, inputs, from_seconds(seconds), millis(window_ms));
  std::printf("stream drained in %.3f s total; %llu records through the DAG\n",
              result.wall_seconds,
              static_cast<unsigned long long>(result.records_emitted));

  const auto trending = apps::collect_local_kv(*env.cluster, "out/trending/");
  std::printf("trending words (peak single-window count):\n");
  std::vector<std::pair<uint64_t, std::string>> ranked;
  for (const auto& [word, peak] : trending) {
    ranked.emplace_back(apps::parse_count(peak), word);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (size_t i = 0; i < std::min<size_t>(8, ranked.size()); ++i) {
    std::printf("  %-12s %llu\n", ranked[i].second.c_str(),
                static_cast<unsigned long long>(ranked[i].first));
  }
  return 0;
}
