#include "bench/harness.h"

#include <cstdio>
#include <fstream>
#include <mutex>

#include "apps/classification.h"
#include "apps/histograms.h"
#include "apps/kcliques.h"
#include "apps/kmeans.h"
#include "apps/naive_bayes.h"
#include "apps/pagerank.h"
#include "apps/wordcount.h"
#include "gen/generators.h"
#include "obs/metrics_snapshot.h"
#include "obs/trace.h"

namespace hamr::bench {

const char* const kUsage =
    "common flags:\n"
    "  --scale=F            data scale multiplier (default 1.0)\n"
    "  --nodes=N            simulated nodes (default 8)\n"
    "  --threads=N          worker threads per node (default 4)\n"
    "  --disk_mbps=F        per-node disk bandwidth (default 32)\n"
    "  --disk_seek_ms=F     per-request disk latency (default 2)\n"
    "  --net_mbps=F         per-NIC bandwidth (default 256)\n"
    "  --net_latency_us=F   per-message latency (default 100)\n"
    "  --job_startup_ms=F   baseline per-job startup (default 250)\n"
    "  --task_startup_ms=F  baseline per-task startup (default 15)\n"
    "  --sort_buffer_kb=F   baseline map sort buffer (default 256)\n"
    "  --update_rate=F      shared-variable updates/s per stripe (default 4e5)\n"
    "  --memory_mb=F        engine reduce-staging budget (default 64)\n"
    "  --dfs_block_kb=F     HDFS-analog block size (default 1024)\n"
    "  --merge_fan_in=N     baseline io.sort.factor (default 10)\n"
    "  --stripes=N          partial-reduce stripes per node (default 64)\n"
    "  --flow_control_kb=F  outbox watermark (default 512)\n"
    "  --bin_queue_kb=F     receiver bin-queue bound (default 1024)\n"
    "  --ingress_kb=F       transport ingress buffer (default 1024)\n"
    "  --no_flow_control    disable engine flow control\n"
    "  --trace=FILE         write Chrome trace_event JSON (chrome://tracing)\n"
    "  --metrics_json=FILE  write merged cluster metrics JSON (- = stdout)\n";

BenchSetup BenchSetup::from_flags(const Flags& flags) {
  BenchSetup s;
  s.nodes = static_cast<uint32_t>(flags.get_int("nodes", s.nodes));
  s.threads = static_cast<uint32_t>(flags.get_int("threads", s.threads));
  s.scale = flags.get_double("scale", s.scale);
  s.disk_mbps = flags.get_double("disk_mbps", s.disk_mbps);
  s.disk_seek_ms = flags.get_double("disk_seek_ms", s.disk_seek_ms);
  s.net_mbps = flags.get_double("net_mbps", s.net_mbps);
  s.net_latency_us = flags.get_double("net_latency_us", s.net_latency_us);
  s.job_startup_ms = flags.get_double("job_startup_ms", s.job_startup_ms);
  s.task_startup_ms = flags.get_double("task_startup_ms", s.task_startup_ms);
  s.sort_buffer_kb = flags.get_double("sort_buffer_kb", s.sort_buffer_kb);
  s.merge_fan_in = static_cast<uint32_t>(flags.get_int("merge_fan_in", s.merge_fan_in));
  s.dfs_block_kb = flags.get_double("dfs_block_kb", s.dfs_block_kb);
  s.shared_update_rate = flags.get_double("update_rate", s.shared_update_rate);
  s.stripes = static_cast<uint32_t>(flags.get_int("stripes", s.stripes));
  s.engine_memory_mb = flags.get_double("memory_mb", s.engine_memory_mb);
  s.flow_control_kb = flags.get_double("flow_control_kb", s.flow_control_kb);
  s.bin_queue_kb = flags.get_double("bin_queue_kb", s.bin_queue_kb);
  s.ingress_kb = flags.get_double("ingress_kb", s.ingress_kb);
  if (flags.get_bool("no_flow_control", false)) s.flow_control = false;
  s.trace_path = flags.get_string("trace", "");
  s.metrics_json_path = flags.get_string("metrics_json", "");
  return s;
}

apps::BenchEnv BenchSetup::make_env() const {
  cluster::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = nodes;
  cluster_cfg.threads_per_node = threads;
  cluster_cfg.disk.bandwidth_bytes_per_sec = disk_mbps * 1e6;
  cluster_cfg.disk.seek_latency = from_seconds(disk_seek_ms * 1e-3);
  cluster_cfg.net.bandwidth_bytes_per_sec = net_mbps * 1e6;
  cluster_cfg.net.latency = from_seconds(net_latency_us * 1e-6);
  cluster_cfg.net.ingress_capacity_bytes = static_cast<uint64_t>(ingress_kb * 1024);

  engine::EngineConfig engine_cfg;
  engine_cfg.shared_update_rate_per_stripe = shared_update_rate;
  engine_cfg.partial_reduce_stripes = stripes;
  engine_cfg.memory_budget_bytes = static_cast<uint64_t>(engine_memory_mb * 1e6);
  engine_cfg.flow_control_high_bytes = static_cast<uint64_t>(flow_control_kb * 1024);
  engine_cfg.flow_control_enabled = flow_control;
  engine_cfg.bin_queue_bytes = static_cast<uint64_t>(bin_queue_kb * 1024);
  engine_cfg.fault_injector = fault_injector;

  dfs::DfsConfig dfs_cfg;
  dfs_cfg.block_size = static_cast<uint64_t>(dfs_block_kb * 1024);

  apps::BenchEnv env = apps::BenchEnv::make(cluster_cfg, engine_cfg, dfs_cfg);
  if (fault_injector != nullptr) env.cluster->set_fault_injector(fault_injector);
  env.mr_defaults.job_startup_cost = from_seconds(job_startup_ms * 1e-3);
  env.mr_defaults.task_startup_cost = from_seconds(task_startup_ms * 1e-3);
  env.mr_defaults.map_sort_buffer_bytes =
      static_cast<uint64_t>(sort_buffer_kb * 1024);
  env.mr_defaults.merge_fan_in = merge_fan_in;
  return env;
}

void BenchSetup::print_cluster_info(const std::string& title) const {
  std::printf("== %s ==\n", title.c_str());
  std::printf(
      "cluster model (Table 1 analog): %u nodes x %u task slots | disk %.0f "
      "MB/s + %.1f ms seek | NIC %.0f MB/s + %.0f us | baseline job startup "
      "%.0f ms, task startup %.0f ms, sort buffer %.0f KB, merge fan-in %u | "
      "data scale %.3gx of base\n",
      nodes, threads, disk_mbps, disk_seek_ms, net_mbps, net_latency_us,
      job_startup_ms, task_startup_ms, sort_buffer_kb, merge_fan_in, scale);
}

void print_table(const std::string& title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-18s %10s %14s %10s %9s %9s  %s\n", "Benchmark", "Data(MB)",
              "Baseline(s)", "HAMR(s)", "Speedup", "Paper", "Notes");
  for (const Row& row : rows) {
    std::printf("%-18s %10.1f %14.3f %10.3f %8.2fx %8.2fx  %s\n",
                row.name.c_str(), row.data_mb, row.baseline_s, row.hamr_s,
                row.speedup(), row.paper_speedup, row.note.c_str());
  }
  std::fflush(stdout);
}

void print_speedup_bars(const std::string& title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title.c_str());
  double max_speedup = 1;
  for (const Row& row : rows) max_speedup = std::max(max_speedup, row.speedup());
  for (const Row& row : rows) {
    const int width = static_cast<int>(50.0 * row.speedup() / max_speedup);
    std::printf("%-18s %6.2fx |%s\n", row.name.c_str(), row.speedup(),
                std::string(std::max(width, 1), '#').c_str());
  }
  std::printf("%-18s   (paper: ", "");
  for (const Row& row : rows) std::printf("%s %.2fx  ", row.name.c_str(), row.paper_speedup);
  std::printf(")\n");
  std::fflush(stdout);
}

namespace {

// Bench envs are torn down at the end of each bench_*; the metrics they
// accumulated are merged here so finish_observability() can dump one JSON
// covering every bench that ran.
std::mutex g_metrics_mu;
obs::MetricsSnapshot g_metrics;

}  // namespace

void init_observability(const BenchSetup& setup) {
  if (!setup.trace_path.empty()) obs::trace().enable();
}

void harvest_metrics(apps::BenchEnv& env) {
  obs::MetricsSnapshot snap;
  for (uint32_t n = 0; n < env.nodes(); ++n) {
    snap.merge_from(obs::MetricsSnapshot::capture(env.cluster->node(n).metrics()));
  }
  std::lock_guard<std::mutex> lock(g_metrics_mu);
  g_metrics.merge_from(snap);
}

void finish_observability(const BenchSetup& setup) {
  if (!setup.trace_path.empty()) {
    obs::TraceRecorder& tr = obs::trace();
    tr.disable();
    std::ofstream out(setup.trace_path);
    out << tr.drain_to_json();
    std::printf("trace: wrote %s (%llu events dropped by ring wraparound)\n",
                setup.trace_path.c_str(),
                static_cast<unsigned long long>(tr.dropped()));
  }
  if (!setup.metrics_json_path.empty()) {
    std::lock_guard<std::mutex> lock(g_metrics_mu);
    const std::string json = g_metrics.to_json();
    if (setup.metrics_json_path == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(setup.metrics_json_path);
      out << json;
      std::printf("metrics: wrote %s\n", setup.metrics_json_path.c_str());
    }
  }
  std::fflush(stdout);
}

namespace {


double mb(uint64_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace

Row bench_kmeans(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::MoviesSpec spec;
  spec.total_bytes = static_cast<uint64_t>(64e6 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::movie_vectors_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "kmeans", shards);
  const auto params = apps::kmeans::make_params(shards, 8);

  Row row{"K-Means", mb(staged.total_bytes), 0, 0, 10.31, "1 iter, k=8"};
  row.baseline_s = apps::kmeans::run_baseline(env, staged, params).seconds;
  row.hamr_s = apps::kmeans::run_hamr(env, staged, params).seconds;
  harvest_metrics(env);
  return row;
}

Row bench_classification(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::MoviesSpec spec;
  spec.total_bytes = static_cast<uint64_t>(64e6 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::movie_vectors_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "classification", shards);
  const auto params = apps::kmeans::make_params(shards, 8);

  Row row{"Classification", mb(staged.total_bytes), 0, 0, 13.03, "k=8 fixed"};
  row.baseline_s = apps::classification::run_baseline(env, staged, params).seconds;
  row.hamr_s = apps::classification::run_hamr(env, staged, params).seconds;
  harvest_metrics(env);
  return row;
}

Row bench_pagerank(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::WebGraphSpec spec;
  spec.num_pages = 16384;
  spec.num_edges = static_cast<uint64_t>(1000e3 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::web_graph_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "pagerank", shards);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  Row row{"PageRank", mb(staged.total_bytes), 0, 0, 13.61, "3 iterations"};
  row.baseline_s = apps::pagerank::run_baseline(env, staged, params).seconds;
  row.hamr_s = apps::pagerank::run_hamr(env, staged, params).seconds;
  harvest_metrics(env);
  return row;
}

Row bench_kcliques(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::RmatSpec spec;
  spec.scale = 12;
  spec.num_edges = static_cast<uint64_t>(48e3 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::rmat_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "kcliques", shards);
  apps::kcliques::Params params;
  params.k = 4;

  Row row{"KCliques", mb(staged.total_bytes), 0, 0, 11.50, "K=4, R-MAT 2^12"};
  row.baseline_s = apps::kcliques::run_baseline(env, staged, params).seconds;
  row.hamr_s = apps::kcliques::run_hamr(env, staged, params).seconds;
  harvest_metrics(env);
  return row;
}

Row bench_wordcount(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::TextSpec spec;
  spec.total_bytes = static_cast<uint64_t>(16e6 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::text_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "wordcount", shards);

  Row row{"WordCount", mb(staged.total_bytes), 0, 0, 1.20, "zipf 0.99"};
  row.baseline_s = apps::wordcount::run_baseline(env, staged).seconds;
  row.hamr_s = apps::wordcount::run_hamr(env, staged).seconds;
  harvest_metrics(env);
  return row;
}

namespace {

Row bench_histogram(const BenchSetup& setup, apps::histograms::Kind kind,
                    bool hamr_combine) {
  apps::BenchEnv env = setup.make_env();
  gen::MoviesSpec spec;
  spec.total_bytes = static_cast<uint64_t>(24e6 * setup.scale);
  const bool movies = kind == apps::histograms::Kind::kMovies;
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::movies_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(
      env, movies ? "histogram_movies" : "histogram_ratings", shards);

  Row row{movies ? "HistogramMovies" : "HistogramRatings", mb(staged.total_bytes),
          0, 0, 0, ""};
  if (movies) {
    row.paper_speedup = hamr_combine ? 1.79 : 1.72;
  } else {
    row.paper_speedup = hamr_combine ? 0.31 : 0.26;
    row.note = "5-key skew";
  }
  if (hamr_combine) row.note += (row.note.empty() ? "" : ", ") + std::string("HAMR combiner");
  row.baseline_s = apps::histograms::run_baseline(env, staged, kind).seconds;
  row.hamr_s = apps::histograms::run_hamr(env, staged, kind, hamr_combine).seconds;
  harvest_metrics(env);
  return row;
}

}  // namespace

Row bench_histogram_movies(const BenchSetup& setup, bool hamr_combine) {
  return bench_histogram(setup, apps::histograms::Kind::kMovies, hamr_combine);
}

Row bench_histogram_ratings(const BenchSetup& setup, bool hamr_combine) {
  return bench_histogram(setup, apps::histograms::Kind::kRatings, hamr_combine);
}

Row bench_naive_bayes(const BenchSetup& setup) {
  apps::BenchEnv env = setup.make_env();
  gen::DocsSpec spec;
  spec.total_bytes = static_cast<uint64_t>(4e6 * setup.scale);
  auto shards = apps::make_shards(env.nodes(), [&](uint32_t i) {
    return gen::docs_shard(spec, i, env.nodes());
  });
  auto staged = apps::stage_input(env, "naive_bayes", shards);

  Row row{"NaiveBayes", mb(staged.total_bytes), 0, 0, 2.43, "2 jobs vs 1"};
  row.baseline_s = apps::naive_bayes::run_baseline(env, staged).seconds;
  row.hamr_s = apps::naive_bayes::run_hamr(env, staged).seconds;
  harvest_metrics(env);
  return row;
}

}  // namespace hamr::bench
