// Reproduces Fig. 3(a): speedup of the four complex/iterative benchmarks
// (K-Means, Classification, PageRank, KCliques) that exploit HAMR's
// in-memory, multi-phase, locality-aware features. Paper: 10.3x-13.6x.
#include "bench/harness.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("fig3a_speedup - Fig. 3(a) of the paper\n") + kUsage);
  const BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Fig. 3(a): feature-exploiting benchmarks");
  init_observability(setup);

  std::vector<Row> rows;
  rows.push_back(bench_kmeans(setup));
  rows.push_back(bench_classification(setup));
  rows.push_back(bench_pagerank(setup));
  rows.push_back(bench_kcliques(setup));
  print_speedup_bars("Fig. 3(a) (reproduced, scaled)", rows);
  finish_observability(setup);
  return 0;
}
