// Reproduces Table 2: execution time of all eight benchmarks on the Hadoop
// baseline (IDH 3.0 analog) and on HAMR, plus the measured speedups next to
// the paper's reference numbers.
#include <cstdio>

#include "apps/wordcount.h"
#include "bench/harness.h"
#include "ir/ir.h"
#include "ir/passes.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              std::string("table2_benchmarks - Table 2 of the paper\n") +
                  kUsage +
                  "  --dump_ir            print the WordCount flowlet IR "
                  "before/after the pass pipeline, then exit\n");
  if (flags.get_bool("dump_ir", false)) {
    // The combiner-enabled WordCount exercises every standard pass:
    // place_combiner turns the shuffle edge into a combine edge,
    // fuse_map_combine folds the splitter into the loader below it.
    const ir::Graph built = apps::wordcount::build_ir(/*combine=*/true);
    std::printf("WordCount IR, as built by the front-end:\n%s\n",
                ir::dump(built).c_str());
    const ir::Graph optimized = ir::optimize(built);
    std::printf("WordCount IR, after the standard pass pipeline:\n%s",
                ir::dump(optimized).c_str());
    return 0;
  }
  const BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Table 2: baseline vs HAMR, all eight benchmarks");
  init_observability(setup);

  std::vector<Row> rows;
  rows.push_back(bench_kmeans(setup));
  rows.push_back(bench_classification(setup));
  rows.push_back(bench_pagerank(setup));
  rows.push_back(bench_kcliques(setup));
  rows.push_back(bench_wordcount(setup));
  rows.push_back(bench_histogram_movies(setup));
  rows.push_back(bench_histogram_ratings(setup));
  rows.push_back(bench_naive_bayes(setup));

  print_table("Table 2 (reproduced, scaled)", rows);
  finish_observability(setup);
  return 0;
}
