// Microbenchmarks for the networking substrate: in-proc fabric dispatch,
// RPC round-trips (cost model off = pure software overhead), and real TCP
// loopback round-trips.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <mutex>

#include "net/inproc_transport.h"
#include "net/router.h"
#include "net/rpc.h"
#include "net/tcp_transport.h"

using namespace hamr;
using namespace hamr::net;

namespace {

NetConfig free_net() {
  NetConfig config;
  config.enabled = false;
  return config;
}

// Blocks until `n` messages were delivered.
struct CountingSink {
  std::mutex mu;
  std::condition_variable cv;
  size_t count = 0;

  MessageHandler handler() {
    return [this](Message&&) {
      std::lock_guard<std::mutex> lock(mu);
      ++count;
      cv.notify_all();
    };
  }
  void wait_for(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return count >= n; });
  }
};

}  // namespace

static void BM_InProcOneWay(benchmark::State& state) {
  InProcTransport fabric(2, free_net());
  CountingSink sink;
  fabric.endpoint(0)->set_handler([](Message&&) {});
  fabric.endpoint(1)->set_handler(sink.handler());
  fabric.start();
  const std::string payload(static_cast<size_t>(state.range(0)), 'p');
  size_t sent = 0;
  for (auto _ : state) {
    fabric.endpoint(0)->send(1, 1, payload);
    ++sent;
  }
  sink.wait_for(sent);
  state.SetBytesProcessed(static_cast<int64_t>(sent) * payload.size());
  fabric.stop();
}
BENCHMARK(BM_InProcOneWay)->Arg(64)->Arg(4096)->Arg(65536);

static void BM_RpcRoundTripInProc(benchmark::State& state) {
  InProcTransport fabric(2, free_net());
  Router r0(fabric.endpoint(0)), r1(fabric.endpoint(1));
  Rpc rpc0(&r0), rpc1(&r1);
  rpc1.register_method(1, [](NodeId, std::string_view arg) { return std::string(arg); });
  fabric.start();
  const std::string payload(static_cast<size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    auto result = rpc0.call_sync(1, 1, payload);
    benchmark::DoNotOptimize(result.ok());
  }
  fabric.stop();
}
BENCHMARK(BM_RpcRoundTripInProc)->Arg(64)->Arg(4096);

static void BM_RpcRoundTripTcp(benchmark::State& state) {
  TcpTransport fabric(2);
  Router r0(fabric.endpoint(0)), r1(fabric.endpoint(1));
  Rpc rpc0(&r0), rpc1(&r1);
  rpc1.register_method(1, [](NodeId, std::string_view arg) { return std::string(arg); });
  fabric.start();
  const std::string payload(static_cast<size_t>(state.range(0)), 'p');
  for (auto _ : state) {
    auto result = rpc0.call_sync(1, 1, payload);
    benchmark::DoNotOptimize(result.ok());
  }
  fabric.stop();
}
BENCHMARK(BM_RpcRoundTripTcp)->Arg(64)->Arg(4096);

BENCHMARK_MAIN();
