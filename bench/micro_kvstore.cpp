// Microbenchmarks for the distributed KV store: local puts/gets/appends and
// remote (RPC-path) operations with the cost model off.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "kvstore/kv_store.h"

using namespace hamr;

namespace {

struct KvFixture {
  KvFixture() : cluster(cluster::ClusterConfig::fast(4)), kv(cluster) {}
  cluster::Cluster cluster;
  kv::KvStore kv;
};

KvFixture& fixture() {
  static KvFixture f;
  return f;
}

}  // namespace

static void BM_LocalPutGet(benchmark::State& state) {
  auto& f = fixture();
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "bench/local/" + std::to_string(i++ % 1024);
    const kv::NodeId owner = f.kv.owner_of(key);
    f.kv.put(owner, key, value);
    auto got = f.kv.get(owner, key);
    benchmark::DoNotOptimize(got.ok());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_LocalPutGet)->Arg(16)->Arg(1024);

static void BM_RemotePutGet(benchmark::State& state) {
  auto& f = fixture();
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "bench/remote/" + std::to_string(i++ % 1024);
    const kv::NodeId owner = f.kv.owner_of(key);
    const kv::NodeId caller = (owner + 1) % f.cluster.size();
    f.kv.put(caller, key, value);
    auto got = f.kv.get(caller, key);
    benchmark::DoNotOptimize(got.ok());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_RemotePutGet)->Arg(16)->Arg(1024);

static void BM_LocalAppend(benchmark::State& state) {
  auto& f = fixture();
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "bench/append/" + std::to_string(i % 64);
    const kv::NodeId owner = f.kv.owner_of(key);
    f.kv.append(owner, key, "element");
    if (++i % 4096 == 0) f.kv.clear_namespace("bench/append/");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalAppend);

BENCHMARK_MAIN();
