// query_bigbench: BigBench-flavored multi-stage relational queries on the
// flowlet engine, submitted through the multi-tenant JobService.
//
// A synthetic retail dataset (store_sales fact table + item dimension) feeds
// four query shapes spanning every operator of the query layer:
//   Q1  filtered group-by        - scan + filter fused into the loaders, one
//                                  shuffle into a combining fold;
//   Q2  join + group-by          - two shuffle stages (the BigBench shape);
//   Q3  join + filter + project  - post-join predicate runs as a local-edge
//                                  fused map, top-K by price client-side;
//   Q4  filter + project scan    - zero-shuffle, loader-fused.
// Every query is checked against the in-memory reference evaluator before
// its numbers are reported (--verify=0 skips, for large --rows runs).
//
// --metrics_json dumps the merged JobResult metric snapshots (the CI
// bench-smoke artifact); --trace writes Chrome trace_event JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/flags.h"
#include "common/random.h"
#include "obs/metrics_snapshot.h"
#include "obs/trace.h"
#include "query/planner.h"
#include "query/reference.h"
#include "service/job_service.h"

using namespace hamr;
using namespace hamr::query;

namespace {

const char* kCategories[] = {"electronics", "grocery",  "apparel",
                             "furniture",   "sports",   "toys",
                             "garden",      "books"};

// store_sales(ss_item_sk, ss_customer_sk, ss_quantity, ss_sales_price) and
// item(i_item_sk, i_category, i_price). Prices sit on the 1/16 grid so
// distributed float sums are exact in any fold order (see testgen.h).
Catalog make_catalog(uint64_t sales_rows, uint64_t item_rows, uint64_t seed) {
  Rng rng(seed);
  Catalog catalog;

  Table item;
  item.schema.cols = {{"i_item_sk", ColType::kI64},
                      {"i_category", ColType::kStr},
                      {"i_price", ColType::kF64}};
  item.rows.reserve(item_rows);
  for (uint64_t i = 0; i < item_rows; ++i) {
    item.rows.push_back(
        {Value::of(static_cast<int64_t>(i)),
         Value::of(std::string(kCategories[rng.next_below(8)])),
         Value::of(static_cast<double>(rng.next_below(1600)) / 16.0)});
  }
  catalog.tables["item"] = std::move(item);

  Table sales;
  sales.schema.cols = {{"ss_item_sk", ColType::kI64},
                       {"ss_customer_sk", ColType::kI64},
                       {"ss_quantity", ColType::kI64},
                       {"ss_sales_price", ColType::kF64}};
  sales.rows.reserve(sales_rows);
  for (uint64_t i = 0; i < sales_rows; ++i) {
    // Zipf-ish item popularity: half the sales hit the first 1/8 of items.
    const uint64_t item_sk = rng.next_bool(0.5)
                                 ? rng.next_below(std::max<uint64_t>(1, item_rows / 8))
                                 : rng.next_below(item_rows);
    sales.rows.push_back(
        {Value::of(static_cast<int64_t>(item_sk)),
         Value::of(static_cast<int64_t>(rng.next_below(sales_rows / 4 + 1))),
         Value::of(static_cast<int64_t>(1 + rng.next_below(100))),
         Value::of(static_cast<double>(rng.next_below(3200)) / 16.0)});
  }
  catalog.tables["store_sales"] = std::move(sales);
  return catalog;
}

struct QueryRun {
  std::string name;
  PlanPtr plan;
  uint64_t input_rows = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "query_bigbench - BigBench-style queries over the query layer\n"
              "  --rows=N        store_sales rows (100000)\n"
              "  --items=N       item dimension rows (2000)\n"
              "  --nodes=N       cluster nodes (4)\n"
              "  --threads=N     worker threads per node (4)\n"
              "  --lanes=N       executor lanes (2)\n"
              "  --verify=0|1    check against the reference evaluator (1)\n"
              "  --trace=FILE    Chrome trace_event JSON\n"
              "  --metrics_json=FILE  merged metrics JSON ('-' = stdout)\n");
  const uint64_t rows = static_cast<uint64_t>(flags.get_int("rows", 100'000));
  const uint64_t items = static_cast<uint64_t>(flags.get_int("items", 2'000));
  const uint32_t nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  const uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  const uint32_t lanes = static_cast<uint32_t>(flags.get_int("lanes", 2));
  const bool verify = flags.get_int("verify", 1) != 0;
  const std::string trace_path = flags.get_string("trace", "");
  const std::string metrics_path = flags.get_string("metrics_json", "");

  if (!trace_path.empty()) obs::trace().enable();

  const Catalog catalog = make_catalog(rows, items, /*seed=*/42);
  const uint64_t join_input = rows + items;

  // Column indexes (store_sales: 0..3; joined l.sales + r.item: 0..6).
  constexpr uint32_t kItemSk = 0, kCustomerSk = 1, kQuantity = 2, kPrice = 3;
  constexpr uint32_t kJoinCategory = 5, kJoinItemPrice = 6;

  std::vector<QueryRun> queries;
  // Q1: per-item sales rollup for bulk purchases.
  queries.push_back(
      {"Q1 filter+group_by",
       group_by(filter(scan("store_sales"),
                       Expr::cmp(kQuantity, CmpOp::kGt, Value::of(int64_t{50}))),
                {kItemSk},
                {{AggKind::kCount, 0},
                 {AggKind::kSum, kQuantity},
                 {AggKind::kSum, kPrice}}),
       rows});
  // Q2: revenue by category (the canonical BigBench join+aggregate).
  queries.push_back(
      {"Q2 join+group_by",
       group_by(hash_join(scan("store_sales"), scan("item"), kItemSk, 0),
                {kJoinCategory},
                {{AggKind::kCount, 0},
                 {AggKind::kSum, kPrice},
                 {AggKind::kMax, kJoinItemPrice}}),
       join_input});
  // Q3: electronics purchases, projected; top-K happens client-side below.
  queries.push_back(
      {"Q3 join+filter+project",
       project(filter(hash_join(scan("store_sales"), scan("item"), kItemSk, 0),
                      Expr::cmp(kJoinCategory, CmpOp::kEq,
                                Value::of("electronics"))),
               {kCustomerSk, kItemSk, kPrice}),
       join_input});
  // Q4: high-value line items, loader-fused scan with zero shuffle stages.
  queries.push_back(
      {"Q4 filter+project scan",
       project(filter(scan("store_sales"),
                      Expr::cmp(kPrice, CmpOp::kGe, Value::of(150.0))),
               {kItemSk, kCustomerSk, kPrice}),
       rows});

  cluster::Cluster cluster(cluster::ClusterConfig::fast(nodes, threads));
  service::ServiceConfig svc_cfg;
  svc_cfg.lanes = lanes;
  svc_cfg.engine = engine::EngineConfig::fast();
  service::JobService jobs(cluster, svc_cfg);

  std::printf("query_bigbench: %llu sales x %llu items, %u nodes x %u threads, %u lanes\n\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(items), nodes, threads, lanes);
  std::printf("%-26s %12s %10s %10s %12s %9s\n", "Query", "input rows",
              "out rows", "wall s", "M rows/s", "verified");

  obs::MetricsSnapshot merged;
  std::vector<Row> q3_rows;
  Schema q3_schema;
  bool ok = true;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryRun& q = queries[qi];
    service::JobSpec spec;
    spec.tenant = "bigbench";
    const std::string tag = "bigbench_q" + std::to_string(qi + 1);

    Stopwatch sw;
    SubmittedQuery submitted =
        submit_query(jobs, cluster, *q.plan, catalog, spec, tag);
    const service::JobStatus st =
        submitted.ticket->wait(std::chrono::seconds(600));
    const double wall = sw.elapsed_seconds();
    if (st != service::JobStatus::kDone) {
      std::fprintf(stderr, "%s ended %s: %s\n", q.name.c_str(),
                   service::to_string(st), submitted.ticket->error().c_str());
      ok = false;
      continue;
    }
    const std::vector<Row> out =
        decode_payload(submitted.out_schema, submitted.ticket->payload());

    const char* verdict = "skipped";
    if (verify) {
      const auto want =
          canonical(submitted.out_schema, reference_eval(*q.plan, catalog));
      const bool match = canonical(submitted.out_schema, out) == want;
      verdict = match ? "yes" : "MISMATCH";
      if (!match) ok = false;
    }
    merged.merge_from(submitted.ticket->result().metrics);
    const double mrps = wall > 0 ? q.input_rows / wall / 1e6 : 0;
    std::printf("%-26s %12llu %10zu %10.3f %12.3f %9s\n", q.name.c_str(),
                static_cast<unsigned long long>(q.input_rows), out.size(),
                wall, mrps, verdict);

    if (qi == 2) {  // keep Q3's rows for the client-side top-K
      q3_rows = out;
      q3_schema = submitted.out_schema;
    }
  }

  // Q3 epilogue: top-5 electronics purchases by sales price (sort on the
  // client - ORDER BY ... LIMIT K over a distributed result is a client
  // concern at this scale).
  if (!q3_rows.empty()) {
    std::partial_sort(q3_rows.begin(),
                      q3_rows.begin() + std::min<size_t>(5, q3_rows.size()),
                      q3_rows.end(), [](const Row& a, const Row& b) {
                        return a[2].as_f64() > b[2].as_f64();
                      });
    std::printf("\nQ3 top-5 by price:\n");
    for (size_t i = 0; i < q3_rows.size() && i < 5; ++i) {
      std::printf("  customer %lld item %lld price %.2f\n",
                  static_cast<long long>(q3_rows[i][0].as_i64()),
                  static_cast<long long>(q3_rows[i][1].as_i64()),
                  q3_rows[i][2].as_f64());
    }
  }

  if (!trace_path.empty()) {
    obs::TraceRecorder& tr = obs::trace();
    tr.disable();
    std::ofstream out(trace_path);
    out << tr.drain_to_json();
    std::printf("trace: wrote %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json = merged.to_json();
    if (metrics_path == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(metrics_path);
      out << json;
      std::printf("metrics: wrote %s\n", metrics_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
