// Reproduces Fig. 3(b): speedup of the four simple/IO-intensive benchmarks
// (WordCount, HistogramMovies, HistogramRatings, NaiveBayes). The paper's
// key qualitative result is the HistogramRatings INVERSION (0.26x): skewed
// 5-key aggregation serializes on shared accumulators and trips flow control.
#include "bench/harness.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("fig3b_speedup - Fig. 3(b) of the paper\n") + kUsage);
  const BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Fig. 3(b): IO-intensive benchmarks");
  init_observability(setup);

  std::vector<Row> rows;
  rows.push_back(bench_wordcount(setup));
  rows.push_back(bench_histogram_movies(setup));
  rows.push_back(bench_histogram_ratings(setup));
  rows.push_back(bench_naive_bayes(setup));
  print_speedup_bars("Fig. 3(b) (reproduced, scaled)", rows);
  finish_observability(setup);
  return 0;
}
