// Reproduces Table 3: HistogramMovies and HistogramRatings with HAMR's
// combiner enabled (the baseline keeps its combiner in both tables).
#include "bench/harness.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("table3_combiner - Table 3 of the paper\n") + kUsage);
  const BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Table 3: HAMR with combiner on the histogram benchmarks");
  init_observability(setup);

  std::vector<Row> rows;
  rows.push_back(bench_histogram_movies(setup, /*hamr_combine=*/true));
  rows.push_back(bench_histogram_ratings(setup, /*hamr_combine=*/true));
  print_table("Table 3 (reproduced, scaled)", rows);
  finish_observability(setup);
  return 0;
}
