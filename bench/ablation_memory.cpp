// Ablation A1 (DESIGN.md): in-memory computation vs forced spilling.
// Sweeps the engine's reduce-staging memory budget on a reduce-heavy
// WordCount (full reduce, no combiner) - as the budget shrinks, staged
// input spills through the throttled disk and the job slows, quantifying
// §3.1's in-memory claim.
#include "bench/harness.h"

#include "apps/wordcount.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("ablation_memory - in-memory vs spill (A1)\n") + kUsage);
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A1: engine memory budget sweep (WordCount, full reduce)");

  const double budgets_mb[] = {64, 2, 0.5, 0.125};
  std::printf("\n%-14s %10s %14s %12s\n", "Budget(MB)", "Time(s)", "SpillBytes",
              "Slowdown");
  double base_time = 0;
  for (const double budget : budgets_mb) {
    BenchSetup variant = setup;
    variant.engine_memory_mb = budget;
    apps::BenchEnv env = variant.make_env();
    gen::TextSpec spec;
    spec.total_bytes = static_cast<uint64_t>(16e6 * setup.scale);
    std::vector<std::string> shards;
    for (uint32_t i = 0; i < env.nodes(); ++i) {
      shards.push_back(gen::text_shard(spec, i, env.nodes()));
    }
    auto staged = apps::stage_input(env, "wc_mem", shards);
    auto info = apps::wordcount::run_hamr(env, staged, /*combine=*/false,
                                          /*use_full_reduce=*/true);
    if (base_time == 0) base_time = info.seconds;
    std::printf("%-14.2f %10.3f %14llu %11.2fx\n", budget, info.seconds,
                static_cast<unsigned long long>(info.engine_result.spill_bytes),
                info.seconds / base_time);
    std::fflush(stdout);
  }
  return 0;
}
