// Microbenchmarks for the job service: closed-loop submit-to-done latency,
// multi-lane throughput, and the admission-control shed path (what a caller
// pays for a rejection - it must be cheap, it runs on RPC delivery threads).
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "service/job_service.h"

using namespace hamr;
using namespace hamr::engine;
using namespace hamr::service;

namespace {

class TinyLoader : public LoaderFlowlet {
 public:
  bool load_chunk(const InputSplit& split, uint64_t* cursor,
                  Context& ctx) override {
    for (uint64_t i = 0; i < split.user_tag; ++i) {
      ctx.emit(0, "k" + std::to_string(split.offset + i), "v");
    }
    (void)cursor;
    return false;
  }
};

class DiscardSink : public MapFlowlet {
 public:
  void process(const KvPair&, Context&) override {}
};

JobWork tiny_work(uint64_t records) {
  JobWork w;
  const auto loader =
      w.graph.add_loader("load", [] { return std::make_unique<TinyLoader>(); });
  const auto sink =
      w.graph.add_map("sink", [] { return std::make_unique<DiscardSink>(); });
  w.graph.connect(loader, sink);
  InputSplit split;
  split.user_tag = records;
  split.preferred_node = 0;
  w.inputs.add(loader, split);
  return w;
}

ServiceConfig bench_config(uint32_t lanes, size_t max_queued = 256) {
  ServiceConfig cfg;
  cfg.lanes = lanes;
  cfg.max_queued = max_queued;
  cfg.engine = EngineConfig::fast();
  return cfg;
}

}  // namespace

// One job at a time, submit -> terminal: the full lifecycle round-trip
// (admission, dispatch, engine run, finalize) for a near-empty job.
static void BM_SubmitToDoneLatency(benchmark::State& state) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, bench_config(/*lanes=*/1));
  uint64_t done = 0;
  for (auto _ : state) {
    auto ticket = svc.submit(JobSpec{}, tiny_work(/*records=*/16));
    done += ticket->wait() == JobStatus::kDone;
  }
  if (done != static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("job did not complete");
  }
  state.SetItemsProcessed(static_cast<int64_t>(done));
}
BENCHMARK(BM_SubmitToDoneLatency)->Unit(benchmark::kMicrosecond);

// A burst of jobs drained through N lanes: closed-loop service throughput,
// and the lane-scaling headline (2 lanes should beat 1 on 2-thread nodes).
static void BM_BurstThroughputByLanes(benchmark::State& state) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster,
                 bench_config(static_cast<uint32_t>(state.range(0))));
  constexpr int kBurst = 16;
  for (auto _ : state) {
    std::vector<std::shared_ptr<JobTicket>> tickets;
    tickets.reserve(kBurst);
    for (int j = 0; j < kBurst; ++j) {
      JobSpec spec;
      spec.tenant = "t" + std::to_string(j % 4);
      tickets.push_back(svc.submit(spec, tiny_work(/*records=*/16)));
    }
    for (auto& t : tickets) {
      if (t->wait() != JobStatus::kDone) state.SkipWithError("job failed");
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_BurstThroughputByLanes)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The shed path: with a zero-depth queue every submit is rejected on the
// spot. This is the cost a full server charges each caller - it must stay
// both bounded and blocking-free.
static void BM_AdmissionShedLatency(benchmark::State& state) {
  cluster::Cluster cluster(cluster::ClusterConfig::fast(2));
  JobService svc(cluster, bench_config(/*lanes=*/1, /*max_queued=*/0));
  uint64_t rejected = 0;
  for (auto _ : state) {
    auto ticket = svc.submit(JobSpec{}, tiny_work(/*records=*/16));
    rejected += ticket->status() == JobStatus::kRejected;
  }
  if (rejected != static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("expected every submit to shed");
  }
  state.SetItemsProcessed(static_cast<int64_t>(rejected));
}
BENCHMARK(BM_AdmissionShedLatency)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
