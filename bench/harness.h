// Shared harness for the paper-reproduction benches (Tables 2-3, Fig. 3,
// ablations). Builds the scaled simulated cluster, stages identical inputs
// for both engines, runs each benchmark, and prints paper-style tables.
//
// All knobs are flags so the calibration in EXPERIMENTS.md is reproducible:
//   --scale=0.5 --nodes=8 --disk_mbps=64 --net_mbps=256 ...
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common.h"
#include "common/flags.h"
#include "fault/fault.h"

namespace hamr::bench {

struct BenchSetup {
  // Cluster shape (paper Table 1: 15 worker nodes, 2x6-core Xeon; scaled).
  uint32_t nodes = 8;
  uint32_t threads = 4;

  // Data scale multiplier over the base sizes (base ~= paper / 4000).
  double scale = 1.0;

  // Cost models (see DESIGN.md for the calibration rationale).
  double disk_mbps = 32;
  double disk_seek_ms = 2;
  double net_mbps = 256;
  double net_latency_us = 100;
  double job_startup_ms = 250;   // baseline only
  double task_startup_ms = 15;   // baseline only
  double sort_buffer_kb = 256;   // baseline io.sort.mb analog
  uint32_t merge_fan_in = 10;    // baseline io.sort.factor
  double dfs_block_kb = 1024;    // HDFS block size analog (scaled)

  // Engine knobs.
  double shared_update_rate = 400e3;  // per stripe, ops/s
  uint32_t stripes = 64;
  double engine_memory_mb = 64;
  double flow_control_kb = 512;   // outbox watermark (loader throttle)
  double bin_queue_kb = 1024;     // receiver-side buffered-bin bound
  double ingress_kb = 1024;       // transport ingress buffer
  bool flow_control = true;

  // Optional chaos rig (ablation_faults): wired into the transport, disks,
  // and engine runtime of every env this setup creates. Not owned.
  fault::FaultInjector* fault_injector = nullptr;

  // Observability outputs (empty = off). trace_path gets a Chrome
  // trace_event JSON (load in chrome://tracing or Perfetto); metrics_json
  // gets the merged cluster metrics of every bench that ran ("-" = stdout).
  std::string trace_path;
  std::string metrics_json_path;

  static BenchSetup from_flags(const Flags& flags);

  apps::BenchEnv make_env() const;

  // Prints the cluster model (the Table 1 analog) once per binary.
  void print_cluster_info(const std::string& title) const;
};

struct Row {
  std::string name;
  double data_mb = 0;
  double baseline_s = 0;
  double hamr_s = 0;
  double paper_speedup = 0;  // reference from the paper's Table 2
  std::string note;

  double speedup() const { return hamr_s > 0 ? baseline_s / hamr_s : 0; }
};

// Prints a Table-2-style table (and per-row paper reference speedups).
void print_table(const std::string& title, const std::vector<Row>& rows);

// Prints Fig.-3-style ASCII speedup bars.
void print_speedup_bars(const std::string& title, const std::vector<Row>& rows);

// The eight benchmarks. Each builds a fresh environment, stages input, runs
// the baseline then HAMR, and returns the measured row. Variants:
//   hamr_combine - enable HAMR's sender-side combiner (Table 3);
// Base data sizes at scale=1 are documented in EXPERIMENTS.md.
Row bench_kmeans(const BenchSetup& setup);
Row bench_classification(const BenchSetup& setup);
Row bench_pagerank(const BenchSetup& setup);
Row bench_kcliques(const BenchSetup& setup);
Row bench_wordcount(const BenchSetup& setup);
Row bench_histogram_movies(const BenchSetup& setup, bool hamr_combine = false);
Row bench_histogram_ratings(const BenchSetup& setup, bool hamr_combine = false);
Row bench_naive_bayes(const BenchSetup& setup);

// Observability bracket for bench mains. init enables the process tracer
// when --trace is set; finish drains the tracer to setup.trace_path and
// writes the metrics accumulated by harvest_metrics() to
// setup.metrics_json_path. Each bench_* harvests its env before teardown.
void init_observability(const BenchSetup& setup);
void harvest_metrics(apps::BenchEnv& env);
void finish_observability(const BenchSetup& setup);

// Common flag help string.
extern const char* const kUsage;

}  // namespace hamr::bench
