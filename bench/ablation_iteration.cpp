// Ablation A5 + dataset cache (DESIGN.md §15): PageRank iteration data paths.
// Three variants, identical math (order-canonicalized sums):
//   * reload edges each iteration - re-read the edge file and rebuild
//     adjacency every iteration, like a chained-job system (ablated A5);
//   * in-memory kv iterations     - the paper's EdgeLoader: adjacency lists
//     live in node-shared KV memory between iterations;
//   * cached dataset iterations   - iteration 0 publishes the adjacency as
//     cross-job cache dataset "pagerank/adj" (key-partitioned); later
//     iterations pin it and stream resident blocks over a shuffle-free edge.
//
// Each variant runs --reps times (fresh environment per rep). The table
// reports medians; the acceptance checks compare the MINIMUM iteration-1 and
// minimum mean(2..N) wall times across reps - the min is the least-noise
// estimator of a run's true cost, so ambient machine load cannot flip the
// verdict.
//
// Asserted (non-zero exit on failure):
//   * final ranks are exactly equal across all variants and reps;
//   * with the cache, min mean(iteration 2..N) is >= 2x faster than
//     min iteration 1;
//   * the cached runs actually hit the cache (cache.hit_rate > 0).
#include "bench/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <vector>

#include "apps/pagerank.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

namespace {

double mean_tail(const std::vector<double>& seconds) {
  if (seconds.size() < 2) return 0;
  return std::accumulate(seconds.begin() + 1, seconds.end(), 0.0) /
         static_cast<double>(seconds.size() - 1);
}

double median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t mid = v.size() / 2;
  return v.size() % 2 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              std::string("ablation_iteration - PageRank iteration data path "
                          "(A5 + dataset cache)\n") + kUsage);
  const uint32_t reps =
      static_cast<uint32_t>(flags.get_double("reps", 3));
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A5: PageRank iteration data path");
  init_observability(setup);

  gen::WebGraphSpec spec;
  spec.num_pages = 16384;
  spec.num_edges = static_cast<uint64_t>(700e3 * setup.scale);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 4;

  struct Variant {
    const char* name;
    std::vector<double> totals, iter1s, tails;
    std::map<uint64_t, double> ranks;  // first rep; later reps must match
    uint64_t cache_hits = 0;
    int rank_mismatches = 0;
  };
  std::vector<Variant> variants = {{"reload edges each iteration"},
                                   {"in-memory kv iterations"},
                                   {"cached dataset iterations"}};

  for (uint32_t rep = 0; rep < reps; ++rep) {
    for (size_t v = 0; v < variants.size(); ++v) {
      apps::BenchEnv env = setup.make_env();
      std::vector<std::string> shards;
      for (uint32_t i = 0; i < env.nodes(); ++i) {
        shards.push_back(gen::web_graph_shard(spec, i, env.nodes()));
      }
      auto staged = apps::stage_input(env, "pr_iter", shards);
      apps::pagerank::RunInfo info;
      switch (v) {
        case 0:
          info = apps::pagerank::run_hamr(env, staged, params, /*reload=*/true);
          break;
        case 1:
          info = apps::pagerank::run_hamr(env, staged, params, /*reload=*/false);
          break;
        case 2:
          info = apps::pagerank::run_hamr_cached(env, staged, params);
          variants[v].cache_hits += env.dataset_cache->stats().hits;
          break;
      }
      variants[v].totals.push_back(info.seconds);
      variants[v].iter1s.push_back(info.iteration_seconds.front());
      variants[v].tails.push_back(mean_tail(info.iteration_seconds));
      auto ranks = apps::pagerank::hamr_ranks(env, params);
      if (rep == 0 && v == 0) {
        variants[0].ranks = std::move(ranks);
      } else if (ranks != variants[0].ranks) {
        ++variants[v].rank_mismatches;
      }
      harvest_metrics(env);
    }
  }

  std::printf("\n(median of %u reps)\n", reps);
  std::printf("%-28s %10s %10s %12s %8s\n", "Variant", "Total(s)", "Iter1(s)",
              "Iter2..N(s)", "Speedup");
  for (const Variant& variant : variants) {
    const double iter1 = median(variant.iter1s);
    const double tail = median(variant.tails);
    std::printf("%-28s %10.3f %10.3f %12.3f %7.2fx\n", variant.name,
                median(variant.totals), iter1, tail,
                tail > 0 ? iter1 / tail : 0);
  }
  std::fflush(stdout);
  finish_observability(setup);

  // --- acceptance checks ---
  int failures = 0;
  for (const Variant& variant : variants) {
    if (variant.rank_mismatches) {
      std::fprintf(stderr, "FAIL: '%s' ranks differ from '%s' in %d rep(s)\n",
                   variant.name, variants[0].name, variant.rank_mismatches);
      ++failures;
    }
  }
  const auto& cached = variants[2];
  const double iter1 = *std::min_element(cached.iter1s.begin(), cached.iter1s.end());
  const double tail = *std::min_element(cached.tails.begin(), cached.tails.end());
  if (!(tail > 0) || iter1 < 2.0 * tail) {
    std::fprintf(stderr,
                 "FAIL: cached iterations not >=2x faster than iteration 1 "
                 "(min iter1=%.3fs min mean(iter2..N)=%.3fs)\n",
                 iter1, tail);
    ++failures;
  }
  if (cached.cache_hits == 0) {
    std::fprintf(stderr, "FAIL: cached variant never hit the dataset cache\n");
    ++failures;
  }
  if (failures) return 1;
  std::printf("OK: ranks identical across variants, cached iter2..N "
              ">=2x iter1, cache hits=%llu\n",
              static_cast<unsigned long long>(cached.cache_hits));
  return 0;
}
