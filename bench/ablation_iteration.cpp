// Ablation A5 (DESIGN.md): in-memory iteration on PageRank (§3.2).
// The multi-phase engine keeps adjacency lists and ranks in node-shared
// memory between iterations (EdgeLoader); the ablated variant re-reads the
// edge file from disk and rebuilds adjacency every iteration, like a
// chained-job system.
#include "bench/harness.h"

#include "apps/pagerank.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("ablation_iteration - PageRank in-memory iteration (A5)\n") + kUsage);
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A5: PageRank iteration data path");

  gen::WebGraphSpec spec;
  spec.num_pages = 16384;
  spec.num_edges = static_cast<uint64_t>(700e3 * setup.scale);
  apps::pagerank::Params params;
  params.num_pages = spec.num_pages;
  params.iterations = 3;

  std::printf("\n%-28s %10s\n", "Variant", "Time(s)");
  for (const bool reload : {false, true}) {
    apps::BenchEnv env = setup.make_env();
    std::vector<std::string> shards;
    for (uint32_t i = 0; i < env.nodes(); ++i) {
      shards.push_back(gen::web_graph_shard(spec, i, env.nodes()));
    }
    auto staged = apps::stage_input(env, "pr_iter", shards);
    auto info = apps::pagerank::run_hamr(env, staged, params, reload);
    std::printf("%-28s %10.3f\n",
                reload ? "reload edges each iteration" : "in-memory iterations",
                info.seconds);
    std::fflush(stdout);
  }
  return 0;
}
