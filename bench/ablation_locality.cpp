// Ablation A4 (DESIGN.md): locality awareness on K-Means (§3.3).
// Compares the index-passing DAG (ship (sim, node, offset), fetch the chosen
// line back locally) against a variant that ships the full movie vector
// through the shuffle like the baseline does.
#include "bench/harness.h"

#include "apps/kmeans.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("ablation_locality - K-Means index passing (A4)\n") + kUsage);
  BenchSetup setup = BenchSetup::from_flags(flags);
  // Index-passing saves NETWORK volume; default this ablation to a slower
  // interconnect so the saved bytes are visible at bench scale.
  if (!flags.has("net_mbps")) setup.net_mbps = 8;
  setup.print_cluster_info("Ablation A4: K-Means locality awareness");

  gen::MoviesSpec spec;
  spec.total_bytes = static_cast<uint64_t>(48e6 * setup.scale);

  std::printf("\n%-24s %10s %14s %12s\n", "Variant", "Time(s)", "BinBytes",
              "Records");
  for (const bool ship_full : {false, true}) {
    apps::BenchEnv env = setup.make_env();
    std::vector<std::string> shards;
    for (uint32_t i = 0; i < env.nodes(); ++i) {
      shards.push_back(gen::movie_vectors_shard(spec, i, env.nodes()));
    }
    auto staged = apps::stage_input(env, "km_loc", shards);
    const auto params = apps::kmeans::make_params(shards, 8);
    auto info = apps::kmeans::run_hamr(env, staged, params, ship_full);
    std::printf("%-24s %10.3f %14llu %12llu\n",
                ship_full ? "ship full vectors" : "pass index (locality)",
                info.seconds,
                static_cast<unsigned long long>(info.engine_result.bin_bytes),
                static_cast<unsigned long long>(info.engine_result.records_emitted));
    std::fflush(stdout);
  }
  return 0;
}
