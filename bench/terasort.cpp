// TeraSort-class distributed sort bench: sampling pass, range-partitioned
// shuffle, per-node spill/merge (src/sort/). Reports GB/s vs node count on
// the cost-model-free cluster, so the number measures the real code paths:
// batch record decode, zero-copy shuffle frames, arena staging, loser-tree
// merge.
//
// Every run is validated byte-for-byte against a single-threaded std::sort
// of the same dataset - the bench exits non-zero on any mismatch, including
// under --chaos (message drops + task crashes over the reliable channel).
//
//   terasort --nodes=8 --threads=4 --records=200000 --reliable --chaos
//            --metrics_json=bench_terasort.json --trace=terasort_trace.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "fault/fault.h"
#include "sort/sort.h"

using namespace hamr;
using namespace hamr::bench;

namespace {

// Classic TeraSort record shape: 10-byte binary key + 90-byte payload,
// generated from a seeded xorshift so every run sorts the same dataset.
std::vector<std::string> make_dataset(size_t records, uint64_t seed) {
  uint64_t state = seed ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  std::vector<std::string> data;
  data.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    std::string rec;
    rec.reserve(100);
    while (rec.size() < 100) {
      const uint64_t r = next();
      for (int b = 0; b < 8 && rec.size() < 100; ++b) {
        rec.push_back(static_cast<char>(r >> (8 * b)));
      }
    }
    data.push_back(std::move(rec));
  }
  return data;
}

struct RunResult {
  double seconds = 0;
  bool ok = false;
  uint64_t frame_copies = 0;
  uint64_t spill_runs = 0;
};

RunResult run_once(uint32_t nodes, uint32_t threads, bool reliable,
                   fault::FaultInjector* injector,
                   const std::vector<std::string>& data,
                   const std::vector<std::string>& expected,
                   uint64_t memory_budget) {
  engine::EngineConfig cfg = engine::EngineConfig::fast();
  cfg.reliable_shuffle = reliable;
  cfg.fault_injector = injector;
  apps::BenchEnv env = apps::BenchEnv::make(
      cluster::ClusterConfig::fast(nodes, threads), cfg);
  if (injector != nullptr) env.cluster->set_fault_injector(injector);

  // Round-robin shard the dataset, frame each shard, stage node-local files.
  std::vector<std::vector<std::string>> shards(nodes);
  for (size_t i = 0; i < data.size(); ++i) {
    shards[i % nodes].push_back(data[i]);
  }
  sort::SortSpec spec;
  spec.memory_budget_bytes = memory_budget;
  std::vector<std::string> framed;
  framed.reserve(nodes);
  for (const auto& shard : shards) {
    framed.push_back(sort::frame_records(shard));
  }
  sort::stage_sort_input(*env.cluster, spec, framed);

  const auto t0 = std::chrono::steady_clock::now();
  sort::SortStats stats = sort::run_distributed_sort(*env.engine, spec);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.frame_copies = env.cluster->total_counter("engine.shuffle_frame_copies");
  r.spill_runs = env.cluster->total_counter("sort.spill_runs");
  const std::vector<std::string> sorted = sort::collect_sorted(*env.cluster, spec);
  r.ok = sorted == expected;
  if (!r.ok) {
    std::fprintf(stderr,
                 "MISMATCH at %u nodes: %zu records out, %zu expected\n", nodes,
                 sorted.size(), expected.size());
    std::fprintf(stderr, "  is_sorted=%d\n",
                 std::is_sorted(sorted.begin(), sorted.end()) ? 1 : 0);
    for (size_t i = 0; i < sorted.size() && i < expected.size(); ++i) {
      if (sorted[i] != expected[i]) {
        std::fprintf(stderr, "  first diff at record %zu\n", i);
        break;
      }
    }
  }
  (void)stats;
  harvest_metrics(env);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      argc, argv,
      std::string("terasort - distributed sort throughput vs node count\n") +
          kUsage +
          "  --records=N          dataset size in 100-byte records (default 200000)\n"
          "  --seed=N             dataset seed (default 42)\n"
          "  --budget_kb=N        per-node sort staging budget (default 1024)\n"
          "  --reliable           run over the seq/ack reliable channel\n"
          "  --chaos              add a 5%-drop / 2%-crash chaos run at max nodes\n");
  BenchSetup setup = BenchSetup::from_flags(flags);
  const size_t records = static_cast<size_t>(
      flags.get_double("records", 200000) * setup.scale);
  const uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  const uint64_t budget =
      static_cast<uint64_t>(flags.get_int("budget_kb", 1024)) * 1024;
  const bool reliable = flags.get_bool("reliable", false);
  const bool chaos = flags.get_bool("chaos", false);
  init_observability(setup);

  const std::vector<std::string> data = make_dataset(records, seed);
  uint64_t total_bytes = 0;
  for (const std::string& r : data) total_bytes += r.size();
  std::vector<std::string> expected = data;
  std::sort(expected.begin(), expected.end());

  std::printf("TeraSort: %zu records, %.1f MB, budget %llu KB, %s shuffle\n\n",
              records, total_bytes / 1e6,
              static_cast<unsigned long long>(budget / 1024),
              reliable ? "reliable" : "legacy");
  std::printf("%7s %9s %9s %10s %10s %8s\n", "Nodes", "Time(s)", "GB/s",
              "FrameCopy", "SpillRuns", "Check");

  bool all_ok = true;
  for (uint32_t n = 1; n <= setup.nodes; n *= 2) {
    const RunResult r = run_once(n, setup.threads, reliable,
                                 /*injector=*/nullptr, data, expected, budget);
    all_ok = all_ok && r.ok;
    std::printf("%7u %9.3f %9.3f %10llu %10llu %8s\n", n, r.seconds,
                total_bytes / 1e9 / r.seconds,
                static_cast<unsigned long long>(r.frame_copies),
                static_cast<unsigned long long>(r.spill_runs),
                r.ok ? "ok" : "MISMATCH");
    std::fflush(stdout);
    // Zero-copy invariant: frames over the reliable channel share the pooled
    // bin buffer; any re-copy at serialize/enqueue/resend bumps the counter.
    if (reliable && r.frame_copies != 0) {
      std::fprintf(stderr, "FAIL: %llu shuffle frame copies on zero-copy path\n",
                   static_cast<unsigned long long>(r.frame_copies));
      all_ok = false;
    }
  }

  if (chaos) {
    fault::FaultPlan plan;
    plan.default_link.drop = 0.05;
    plan.task_crash_rate = 0.02;
    plan.seed = 1213;
    plan.resend_after = millis(20);  // recover dropped frames quickly
    fault::FaultInjector injector(plan);
    const RunResult r = run_once(setup.nodes, setup.threads, /*reliable=*/true,
                                 &injector, data, expected, budget);
    all_ok = all_ok && r.ok;
    std::printf("%6uc %9.3f %9.3f %10llu %10llu %8s  (5%% drop, 2%% crash)\n",
                setup.nodes, r.seconds, total_bytes / 1e9 / r.seconds,
                static_cast<unsigned long long>(r.frame_copies),
                static_cast<unsigned long long>(r.spill_runs),
                r.ok ? "ok" : "MISMATCH");
  }

  finish_observability(setup);
  if (!all_ok) {
    std::fprintf(stderr, "terasort: output mismatch vs std::sort reference\n");
    return 1;
  }
  return 0;
}
