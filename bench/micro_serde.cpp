// Microbenchmarks for the serialization substrate: varint, record, and bin
// encode/decode throughput (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/bin.h"
#include "serde/codec.h"
#include "serde/serde.h"

using namespace hamr;

static void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(4096);
  for (auto& v : values) v = rng.next_u64() >> (rng.next_below(60));
  ByteBuffer buf(64 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    for (uint64_t v : values) w.put_varint(v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

static void BM_VarintDecode(benchmark::State& state) {
  Rng rng(1);
  ByteBuffer buf(64 * 1024);
  serde::Writer w(buf);
  constexpr int kCount = 4096;
  for (int i = 0; i < kCount; ++i) w.put_varint(rng.next_u64() >> rng.next_below(60));
  for (auto _ : state) {
    serde::Reader r(buf.view());
    uint64_t sum = 0;
    for (int i = 0; i < kCount; ++i) sum += r.get_varint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_VarintDecode);

static void BM_RecordEncode(benchmark::State& state) {
  const std::string key = "some_reasonable_key";
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  ByteBuffer buf(1 << 20);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    for (int i = 0; i < 1024; ++i) {
      w.put_bytes(key);
      w.put_bytes(value);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * (key.size() + value.size()));
}
BENCHMARK(BM_RecordEncode)->Arg(16)->Arg(256)->Arg(4096);

static void BM_BinBuildAndScan(benchmark::State& state) {
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    engine::BinBuilder builder(1, 0);
    for (int i = 0; i < 512; ++i) builder.add("key", value);
    const std::string bin = builder.take();
    engine::BinView view(bin);
    engine::KvPair record;
    size_t total = 0;
    while (view.next(&record)) total += record.value.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * 512 * (3 + value.size()));
}
BENCHMARK(BM_BinBuildAndScan)->Arg(16)->Arg(256);

static void BM_TypedVectorRoundTrip(benchmark::State& state) {
  std::vector<std::pair<uint32_t, double>> vec;
  for (int i = 0; i < 256; ++i) vec.emplace_back(i * 7, i * 0.5);
  for (auto _ : state) {
    const std::string bytes = serde::encode_to_string(vec);
    auto decoded =
        serde::decode_from<std::vector<std::pair<uint32_t, double>>>(bytes);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * vec.size());
}
BENCHMARK(BM_TypedVectorRoundTrip);

BENCHMARK_MAIN();
