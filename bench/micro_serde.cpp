// Microbenchmarks for the serialization substrate (varint, record, and bin
// encode/decode throughput) and the engine's hot memory layouts: map-vs-flat
// combine folding, pair-vector-vs-arena reduce staging, and pooled bin
// building (google-benchmark).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>

#include "common/pool.h"
#include "common/random.h"
#include "engine/bin.h"
#include "engine/flat_table.h"
#include "engine/runtime.h"
#include "serde/batch.h"
#include "serde/codec.h"
#include "serde/serde.h"

using namespace hamr;

static void BM_VarintEncode(benchmark::State& state) {
  Rng rng(1);
  std::vector<uint64_t> values(4096);
  for (auto& v : values) v = rng.next_u64() >> (rng.next_below(60));
  ByteBuffer buf(64 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    for (uint64_t v : values) w.put_varint(v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_VarintEncode);

static void BM_VarintDecode(benchmark::State& state) {
  Rng rng(1);
  ByteBuffer buf(64 * 1024);
  serde::Writer w(buf);
  constexpr int kCount = 4096;
  for (int i = 0; i < kCount; ++i) w.put_varint(rng.next_u64() >> rng.next_below(60));
  for (auto _ : state) {
    serde::Reader r(buf.view());
    uint64_t sum = 0;
    for (int i = 0; i < kCount; ++i) sum += r.get_varint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
}
BENCHMARK(BM_VarintDecode);

static void BM_RecordEncode(benchmark::State& state) {
  const std::string key = "some_reasonable_key";
  const std::string value(static_cast<size_t>(state.range(0)), 'v');
  ByteBuffer buf(1 << 20);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    for (int i = 0; i < 1024; ++i) {
      w.put_bytes(key);
      w.put_bytes(value);
    }
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * (key.size() + value.size()));
}
BENCHMARK(BM_RecordEncode)->Arg(16)->Arg(256)->Arg(4096);

static void BM_BinBuildAndScan(benchmark::State& state) {
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    engine::BinBuilder builder(1, 0);
    for (int i = 0; i < 512; ++i) builder.add("key", value);
    const std::string bin = builder.take();
    engine::BinView view(bin);
    engine::KvPair record;
    size_t total = 0;
    while (view.next(&record)) total += record.value.size();
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * 512 * (3 + value.size()));
}
BENCHMARK(BM_BinBuildAndScan)->Arg(16)->Arg(256);

static void BM_TypedVectorRoundTrip(benchmark::State& state) {
  std::vector<std::pair<uint32_t, double>> vec;
  for (int i = 0; i < 256; ++i) vec.emplace_back(i * 7, i * 0.5);
  for (auto _ : state) {
    const std::string bytes = serde::encode_to_string(vec);
    auto decoded =
        serde::decode_from<std::vector<std::pair<uint32_t, double>>>(bytes);
    benchmark::DoNotOptimize(decoded.size());
  }
  state.SetItemsProcessed(state.iterations() * vec.size());
}
BENCHMARK(BM_TypedVectorRoundTrip);

// --- combine accumulator layouts ---------------------------------------------
//
// The fold loop of sender-side combining / partial reduce: a stream of
// records with a skewed key distribution accumulates into key -> acc. The
// unordered_map variant is the engine's former layout (std::string key
// materialized per probe); the FlatAccTable variant probes with the record's
// string_view directly.

namespace {

std::vector<std::string> fold_keys(size_t records, size_t distinct) {
  Rng rng(7);
  std::vector<std::string> keys;
  keys.reserve(records);
  for (size_t i = 0; i < records; ++i) {
    keys.push_back("word-" + std::to_string(rng.next_below(distinct)));
  }
  return keys;
}

constexpr size_t kFoldRecords = 8192;

}  // namespace

static void BM_CombineFoldUnorderedMap(benchmark::State& state) {
  const auto keys = fold_keys(kFoldRecords, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<std::string, std::string> acc;
    for (const std::string& k : keys) {
      // The former hot path: probing allocates a std::string key.
      std::string& v = acc[std::string(std::string_view(k))];
      if (v.empty()) v = "0";
      v.back() = static_cast<char>('0' + ((v.back() - '0' + 1) % 10));
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() * kFoldRecords);
}
BENCHMARK(BM_CombineFoldUnorderedMap)->Arg(64)->Arg(4096);

static void BM_CombineFoldFlatTable(benchmark::State& state) {
  const auto keys = fold_keys(kFoldRecords, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    engine::FlatAccTable acc;
    for (const std::string& k : keys) {
      std::string& v = acc.find_or_insert(k);
      if (v.empty()) v = "0";
      v.back() = static_cast<char>('0' + ((v.back() - '0' + 1) % 10));
    }
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() * kFoldRecords);
}
BENCHMARK(BM_CombineFoldFlatTable)->Arg(64)->Arg(4096);

// --- reduce staging layouts --------------------------------------------------
//
// Stage N records then sort them by key, as the reduce path does before the
// merge: two heap strings per record + pair sort (former layout) vs one
// arena bump per record + prefix-keyed index sort.

namespace {

constexpr size_t kStageRecords = 8192;

std::vector<std::pair<std::string, std::string>> stage_input() {
  Rng rng(13);
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(kStageRecords);
  for (size_t i = 0; i < kStageRecords; ++i) {
    records.emplace_back("key-" + std::to_string(rng.next_below(2048)),
                         std::string(24, 'v'));
  }
  return records;
}

}  // namespace

static void BM_StagePairVectorAndSort(benchmark::State& state) {
  const auto input = stage_input();
  for (auto _ : state) {
    std::vector<std::pair<std::string, std::string>> staged;
    for (const auto& [k, v] : input) staged.emplace_back(k, v);
    std::stable_sort(staged.begin(), staged.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    benchmark::DoNotOptimize(staged.size());
  }
  state.SetItemsProcessed(state.iterations() * kStageRecords);
}
BENCHMARK(BM_StagePairVectorAndSort);

static void BM_StageArenaAndSort(benchmark::State& state) {
  const auto input = stage_input();
  for (auto _ : state) {
    Arena arena;
    std::vector<engine::internal::ReduceStage::Rec> index;
    for (const auto& [k, v] : input) {
      char* data = arena.alloc(k.size() + v.size());
      std::memcpy(data, k.data(), k.size());
      std::memcpy(data + k.size(), v.data(), v.size());
      engine::internal::ReduceStage::Rec rec;
      rec.prefix = engine::internal::key_prefix(k);
      rec.key_len = static_cast<uint32_t>(k.size());
      rec.value_len = static_cast<uint32_t>(v.size());
      rec.data = data;
      index.push_back(rec);
    }
    std::stable_sort(index.begin(), index.end(), engine::internal::reduce_rec_less);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * kStageRecords);
}
BENCHMARK(BM_StageArenaAndSort);

// --- pooled bin building -----------------------------------------------------

static void BM_BinBuildPooled(benchmark::State& state) {
  const std::string value(static_cast<size_t>(state.range(0)), 'x');
  BufferPool pool;
  for (auto _ : state) {
    engine::BinBuilder builder(1, 0);
    for (int i = 0; i < 512; ++i) builder.add("key", value);
    std::string bin = builder.take(&pool);
    engine::BinView view(bin);
    engine::KvPair record;
    size_t total = 0;
    while (view.next(&record)) total += record.value.size();
    benchmark::DoNotOptimize(total);
    pool.release(std::move(bin));  // next take() reuses this capacity
  }
  state.SetBytesProcessed(state.iterations() * 512 * (3 + value.size()));
}
BENCHMARK(BM_BinBuildPooled)->Arg(16)->Arg(256);

// --- scalar vs batch codecs --------------------------------------------------
//
// Head-to-heads for the batch (vectorized) entry points in serde/batch.h:
// fixed-width runs (one memcpy per run vs one put_fixed64/get_fixed64 per
// value) and string runs (one bounds check per run vs one per value). The
// row codec (query/row.cpp) and the sort record path ride the batch side.

namespace {

constexpr size_t kRunValues = 4096;

std::vector<uint64_t> run_u64s() {
  Rng rng(21);
  std::vector<uint64_t> values(kRunValues);
  for (auto& v : values) v = rng.next_u64();
  return values;
}

std::vector<std::string> run_strings() {
  Rng rng(22);
  std::vector<std::string> values;
  values.reserve(kRunValues);
  for (size_t i = 0; i < kRunValues; ++i) {
    values.push_back(std::string(8 + rng.next_below(24), '0' + i % 10));
  }
  return values;
}

}  // namespace

static void BM_FixedRunEncodeScalar(benchmark::State& state) {
  const auto values = run_u64s();
  ByteBuffer buf(64 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    w.put_varint(values.size());
    for (uint64_t v : values) w.put_fixed64(v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * kRunValues * 8);
}
BENCHMARK(BM_FixedRunEncodeScalar);

static void BM_FixedRunEncodeBatch(benchmark::State& state) {
  const auto values = run_u64s();
  ByteBuffer buf(64 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    serde::put_u64_run(w, values);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * kRunValues * 8);
}
BENCHMARK(BM_FixedRunEncodeBatch);

static void BM_FixedRunDecodeScalar(benchmark::State& state) {
  const auto values = run_u64s();
  ByteBuffer buf(64 * 1024);
  serde::Writer w(buf);
  w.put_varint(values.size());
  for (uint64_t v : values) w.put_fixed64(v);
  for (auto _ : state) {
    serde::Reader r(buf.view());
    const uint64_t count = r.get_varint();
    uint64_t sum = 0;
    for (uint64_t i = 0; i < count; ++i) sum += r.get_fixed64();
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * kRunValues * 8);
}
BENCHMARK(BM_FixedRunDecodeScalar);

static void BM_FixedRunDecodeBatch(benchmark::State& state) {
  const auto values = run_u64s();
  ByteBuffer buf(64 * 1024);
  serde::Writer w(buf);
  serde::put_u64_run(w, values);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    serde::Reader r(buf.view());
    serde::get_u64_run(r, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * kRunValues * 8);
}
BENCHMARK(BM_FixedRunDecodeBatch);

static void BM_StringRunEncodeScalar(benchmark::State& state) {
  const auto values = run_strings();
  uint64_t bytes = 0;
  for (const auto& s : values) bytes += s.size();
  ByteBuffer buf(256 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    w.put_varint(values.size());
    for (const auto& s : values) w.put_bytes(s);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StringRunEncodeScalar);

static void BM_StringRunEncodeBatch(benchmark::State& state) {
  const auto values = run_strings();
  uint64_t bytes = 0;
  for (const auto& s : values) bytes += s.size();
  std::vector<std::string_view> views(values.begin(), values.end());
  ByteBuffer buf(256 * 1024);
  for (auto _ : state) {
    buf.clear();
    serde::Writer w(buf);
    serde::put_string_run(w, views);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StringRunEncodeBatch);

static void BM_StringRunDecodeScalar(benchmark::State& state) {
  const auto values = run_strings();
  uint64_t bytes = 0;
  for (const auto& s : values) bytes += s.size();
  ByteBuffer buf(256 * 1024);
  serde::Writer w(buf);
  w.put_varint(values.size());
  for (const auto& s : values) w.put_bytes(s);
  for (auto _ : state) {
    serde::Reader r(buf.view());
    const uint64_t count = r.get_varint();
    size_t total = 0;
    for (uint64_t i = 0; i < count; ++i) total += r.get_bytes().size();
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StringRunDecodeScalar);

static void BM_StringRunDecodeBatch(benchmark::State& state) {
  const auto values = run_strings();
  uint64_t bytes = 0;
  for (const auto& s : values) bytes += s.size();
  std::vector<std::string_view> views(values.begin(), values.end());
  ByteBuffer buf(256 * 1024);
  serde::Writer w(buf);
  serde::put_string_run(w, views);
  std::vector<std::string_view> out;
  for (auto _ : state) {
    out.clear();
    serde::Reader r(buf.view());
    serde::get_string_run(r, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_StringRunDecodeBatch);

BENCHMARK_MAIN();
