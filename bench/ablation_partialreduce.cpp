// Ablation A2 (DESIGN.md): partial reduce vs full reduce on WordCount.
// The partial reduce aggregates each word on arrival (no barrier, no staged
// input); the full reduce stages everything and fires after upstream
// completion - quantifying §2's "computation can start early" claim.
#include "bench/harness.h"

#include "apps/wordcount.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("ablation_partialreduce - partial vs full reduce (A2)\n") + kUsage);
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A2: WordCount partial reduce vs full reduce");

  gen::TextSpec spec;
  spec.total_bytes = static_cast<uint64_t>(16e6 * setup.scale);

  std::printf("\n%-22s %10s %12s %14s\n", "Variant", "Time(s)", "Bins",
              "SpillBytes");
  for (const bool full : {false, true}) {
    apps::BenchEnv env = setup.make_env();
    std::vector<std::string> shards;
    for (uint32_t i = 0; i < env.nodes(); ++i) {
      shards.push_back(gen::text_shard(spec, i, env.nodes()));
    }
    auto staged = apps::stage_input(env, "wc_pr", shards);
    auto info = apps::wordcount::run_hamr(env, staged, /*combine=*/false, full);
    std::printf("%-22s %10.3f %12llu %14llu\n",
                full ? "full reduce" : "partial reduce", info.seconds,
                static_cast<unsigned long long>(info.engine_result.bins_sent),
                static_cast<unsigned long long>(info.engine_result.spill_bytes));
    std::fflush(stdout);
  }
  return 0;
}
