// Microbenchmarks for the scheduling substrate: bounded-queue throughput and
// thread-pool dispatch overhead.
#include <benchmark/benchmark.h>

#include <thread>

#include "common/queue.h"
#include "common/thread_pool.h"

using namespace hamr;

static void BM_QueuePushPopSingleThread(benchmark::State& state) {
  BoundedQueue<uint64_t> q(1024);
  for (auto _ : state) {
    q.push(42);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuePushPopSingleThread);

static void BM_QueueProducerConsumer(benchmark::State& state) {
  for (auto _ : state) {
    BoundedQueue<uint64_t> q(256);
    constexpr uint64_t kItems = 10000;
    std::thread producer([&] {
      for (uint64_t i = 0; i < kItems; ++i) q.push(i);
      q.close();
    });
    uint64_t sum = 0;
    while (auto v = q.pop()) sum += *v;
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_QueueProducerConsumer);

static void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    constexpr int kTasks = 1000;
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
