// Microbenchmarks for the scheduling substrate: bounded-queue throughput,
// thread-pool dispatch overhead, and the head-to-head that motivated the
// sharded scheduler - a single-lock global bin queue vs per-worker deques
// with stealing, at 1..16 workers.
#include <benchmark/benchmark.h>

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/common.h"
#include "apps/wordcount.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/thread_pool.h"
#include "engine/scheduler.h"

using namespace hamr;

static void BM_QueuePushPopSingleThread(benchmark::State& state) {
  BoundedQueue<uint64_t> q(1024);
  for (auto _ : state) {
    q.push(42);
    benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueuePushPopSingleThread);

static void BM_QueueProducerConsumer(benchmark::State& state) {
  for (auto _ : state) {
    BoundedQueue<uint64_t> q(256);
    constexpr uint64_t kItems = 10000;
    std::thread producer([&] {
      for (uint64_t i = 0; i < kItems; ++i) q.push(i);
      q.close();
    });
    uint64_t sum = 0;
    while (auto v = q.pop()) sum += *v;
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_QueueProducerConsumer);

static void BM_ThreadPoolDispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    constexpr int kTasks = 1000;
    std::atomic<int> done{0};
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

// --- single-lock vs sharded scheduler ----------------------------------------
//
// Replica of the engine's former scheduler (runtime.cpp before the sharded
// rewrite): ONE mutex + cv guarding one global deque, byte-budget accounting
// under the same mutex, queue depth/bytes gauges set INSIDE the critical
// section on every push and pop, and the space notify issued while the hot
// lock is held - exactly the per-item costs the rewrite removed. The
// ShardedScheduler run pushes the same item stream (round-robin senders)
// through per-worker shards with its gauges hooked up the way the engine
// hooks them (published outside the locks, batched per dequeue run). Same
// payloads, same worker count, same drain condition.

namespace {

constexpr uint64_t kSchedItems = 20000;
constexpr size_t kSchedPayload = 64;
constexpr uint64_t kSchedBudget = 1ull << 30;

class SingleLockQueue {
 public:
  explicit SingleLockQueue(Metrics* metrics)
      : depth_g_(metrics->gauge("engine.bin_queue_depth")),
        bytes_g_(metrics->gauge("engine.bin_queue_bytes")) {}

  void push(engine::QueueItem&& item) {
    const uint64_t bytes = item.payload.size();
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock, [&] { return stopping_ || bytes_ < kSchedBudget; });
      if (stopping_) return;
      bytes_ += bytes;
      queue_.push_back(std::move(item));
      depth_g_->set(static_cast<int64_t>(queue_.size()));
      bytes_g_->set(static_cast<int64_t>(bytes_));
    }
    cv_.notify_one();
  }

  bool pop(engine::QueueItem* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= out->payload.size();
    depth_g_->set(static_cast<int64_t>(queue_.size()));
    bytes_g_->set(static_cast<int64_t>(bytes_));
    space_cv_.notify_one();  // issued under the lock, as the old code did
    return true;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable space_cv_;
  std::deque<engine::QueueItem> queue_;
  uint64_t bytes_ = 0;
  Gauge* depth_g_;
  Gauge* bytes_g_;
  bool stopping_ = false;
};

// Touch the payload so the consume side is not optimized away; cheap enough
// that queue overhead dominates.
uint64_t consume(const engine::QueueItem& item) {
  uint64_t sum = 0;
  for (char c : item.payload) sum += static_cast<unsigned char>(c);
  return sum;
}

}  // namespace

static void BM_SingleLockSchedulerThroughput(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  Metrics metrics;
  for (auto _ : state) {
    SingleLockQueue q(&metrics);
    std::atomic<uint64_t> done{0};
    std::vector<std::thread> pool;
    for (uint32_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        engine::QueueItem item;
        while (q.pop(&item)) {
          benchmark::DoNotOptimize(consume(item));
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (uint64_t i = 0; i < kSchedItems; ++i) {
      engine::QueueItem item;
      item.src = static_cast<uint32_t>(i % workers);
      item.payload.assign(kSchedPayload, 'x');
      q.push(std::move(item));
    }
    while (done.load(std::memory_order_relaxed) < kSchedItems) {
      std::this_thread::yield();
    }
    q.stop();
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * kSchedItems);
}
BENCHMARK(BM_SingleLockSchedulerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

static void BM_ShardedSchedulerThroughput(benchmark::State& state) {
  const uint32_t workers = static_cast<uint32_t>(state.range(0));
  Metrics metrics;
  engine::ShardedScheduler::Hooks hooks;
  hooks.steals = metrics.counter("engine.sched_steal");
  hooks.lock_wait_ns = metrics.counter("engine.sched_lock_wait_ns");
  hooks.budget_wait_ns = metrics.counter("engine.bin_queue_wait_ns");
  hooks.depth = metrics.gauge("engine.bin_queue_depth");
  hooks.bytes = metrics.gauge("engine.bin_queue_bytes");
  for (auto _ : state) {
    engine::ShardedScheduler sched(workers, kSchedBudget);
    sched.set_hooks(hooks);
    std::atomic<uint64_t> done{0};
    std::vector<std::thread> pool;
    for (uint32_t w = 0; w < workers; ++w) {
      pool.emplace_back([&, w] {
        // Batched pop, exactly as the engine's worker_loop drains it.
        std::vector<engine::ShardedScheduler::Work> batch;
        batch.reserve(32);
        while (sched.next_batch(w, &batch, 32) > 0) {
          for (auto& work : batch) {
            if (work.is_item) {
              benchmark::DoNotOptimize(consume(work.item));
              done.fetch_add(1, std::memory_order_relaxed);
            }
          }
          batch.clear();
        }
      });
    }
    for (uint64_t i = 0; i < kSchedItems; ++i) {
      engine::QueueItem item;
      item.src = static_cast<uint32_t>(i % workers);
      item.payload.assign(kSchedPayload, 'x');
      sched.push_bin(std::move(item));
    }
    while (done.load(std::memory_order_relaxed) < kSchedItems) {
      std::this_thread::yield();
    }
    sched.stop();
    for (auto& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * kSchedItems);
}
BENCHMARK(BM_ShardedSchedulerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// --- fused vs unfused pipeline dispatch --------------------------------------
//
// The same WordCount job through the shape-preserving IR lowering (three
// flowlets, loader->splitter bins crossing the scheduler) and through the
// standard pass pipeline (loader+splitter fused into one task body, those
// bins gone). Identical input and output; the delta is pure per-bin dispatch
// overhead, which is what fusion exists to remove. CI's bench-smoke extracts
// the pair from the JSON artifact as the fused-pipeline regression signal.

namespace {

constexpr uint32_t kWcNodes = 4;
constexpr int kWcLinesPerShard = 200;

std::vector<std::string> wordcount_shards() {
  return apps::make_shards(kWcNodes, [](uint32_t i) {
    std::string s;
    for (int line = 0; line < kWcLinesPerShard; ++line) {
      s += "the quick brown fox jumps over w" + std::to_string(i) + " w" +
           std::to_string(line % 13) + "\n";
    }
    return s;
  });
}

void run_wordcount_pipeline(benchmark::State& state, bool fused) {
  apps::BenchEnv env = apps::BenchEnv::fast(kWcNodes, 2);
  const apps::StagedInput input =
      apps::stage_input(env, "wc_micro", wordcount_shards(), 4 * 1024);
  uint64_t bytes = 0;
  for (auto _ : state) {
    apps::wordcount::run_hamr(env, input, /*combine=*/false,
                              /*use_full_reduce=*/false, fused);
    bytes += input.total_bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

}  // namespace

static void BM_WordCountUnfusedPipeline(benchmark::State& state) {
  run_wordcount_pipeline(state, /*fused=*/false);
}
BENCHMARK(BM_WordCountUnfusedPipeline)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

static void BM_WordCountFusedPipeline(benchmark::State& state) {
  run_wordcount_pipeline(state, /*fused=*/true);
}
BENCHMARK(BM_WordCountFusedPipeline)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
