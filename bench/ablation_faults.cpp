// Ablation A6: recovery overhead vs injected fault rate.
//
// WordCount runs on the full cost-model cluster under a sweep of chaos
// plans. The first row is the legacy path (no injector, no seq/ack channel);
// the second is a zero-fault plan, isolating the pure bookkeeping cost of
// the reliable shuffle channel (frames, acks, unacked tracking) - the
// interesting number, expected well under 5%. Later rows dial up message
// faults (drop/duplicate/delay split as FaultPlan::chaos) plus task crashes
// and report how retransmissions and task retries grow with the fault rate.
#include "bench/harness.h"

#include "apps/wordcount.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              std::string("ablation_faults - recovery overhead vs fault rate (A6)\n") +
                  kUsage + "  --repeats=N          best-of-N per variant (default 3)\n");
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A6: WordCount under injected faults");
  init_observability(setup);

  gen::TextSpec spec;
  spec.total_bytes = static_cast<uint64_t>(8e6 * setup.scale);

  struct Variant {
    const char* name;
    bool injector;       // false = legacy path, no reliable channel
    double msg_rate;     // spread over drop/duplicate/delay
    double crash_rate;   // per task execution
  };
  const Variant variants[] = {
      {"no injector", false, 0, 0},
      {"zero-fault plan", true, 0, 0},
      {"1% msg faults", true, 0.01, 0.002},
      {"5% msg faults", true, 0.05, 0.01},
      {"10% msg faults", true, 0.10, 0.02},
  };

  // Wall-time of a single run is dominated by scheduler noise (the simulated
  // cluster's threads all share the host's cores), so each variant reports
  // best-of-N; the fault/retry counters come from the fastest run.
  const int repeats = static_cast<int>(flags.get_double("repeats", 3));

  std::printf("\n%-18s %9s %10s %9s %9s %9s %9s %10s\n", "Variant", "Time(s)",
              "Overhead", "Faults", "Resends", "DupFrm", "Retries", "SpillRtry");
  double baseline_s = 0;
  for (const Variant& v : variants) {
    double best_s = 0;
    engine::JobResult best{};
    for (int rep = 0; rep < repeats; ++rep) {
      fault::FaultInjector injector(
          fault::FaultPlan::chaos(/*seed=*/1, v.msg_rate, v.crash_rate));
      BenchSetup variant = setup;
      variant.fault_injector = v.injector ? &injector : nullptr;
      apps::BenchEnv env = variant.make_env();

      std::vector<std::string> shards;
      for (uint32_t i = 0; i < env.nodes(); ++i) {
        shards.push_back(gen::text_shard(spec, i, env.nodes()));
      }
      auto staged = apps::stage_input(env, "wc_faults", shards);
      auto info = apps::wordcount::run_hamr(env, staged);
      harvest_metrics(env);
      if (best_s == 0 || info.seconds < best_s) {
        best_s = info.seconds;
        best = info.engine_result;
      }
    }

    if (baseline_s == 0) baseline_s = best_s;
    const double overhead = (best_s - baseline_s) / baseline_s * 100.0;
    std::printf("%-18s %9.3f %9.1f%% %9llu %9llu %9llu %9llu %10llu\n", v.name,
                best_s, overhead,
                static_cast<unsigned long long>(best.faults_injected),
                static_cast<unsigned long long>(best.frames_resent),
                static_cast<unsigned long long>(best.duplicate_frames),
                static_cast<unsigned long long>(best.task_retries),
                static_cast<unsigned long long>(best.spill_retries));
    std::fflush(stdout);
  }
  finish_observability(setup);
  return 0;
}
