// Ablation A3 (DESIGN.md): flow control on/off under the HistogramRatings
// skew. With flow control, loaders throttle while the 5 hot partitions
// drain; without it, the engine buffers without bound (here: measure stall
// counts and the time difference). Paper §2/§5.2.
#include "bench/harness.h"

#include "apps/histograms.h"
#include "gen/generators.h"

using namespace hamr;
using namespace hamr::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv, std::string("ablation_flowcontrol - flow control under skew (A3)\n") + kUsage);
  BenchSetup setup = BenchSetup::from_flags(flags);
  setup.print_cluster_info("Ablation A3: HistogramRatings with/without flow control");

  gen::MoviesSpec spec;
  spec.total_bytes = static_cast<uint64_t>(12e6 * setup.scale);

  std::printf("\n%-18s %10s %10s %14s\n", "Variant", "Time(s)", "Stalls",
              "StallTime(s)");
  for (const bool fc : {true, false}) {
    BenchSetup variant = setup;
    variant.flow_control = fc;
    apps::BenchEnv env = variant.make_env();
    std::vector<std::string> shards;
    for (uint32_t i = 0; i < env.nodes(); ++i) {
      shards.push_back(gen::movies_shard(spec, i, env.nodes()));
    }
    auto staged = apps::stage_input(env, "hr_fc", shards);
    auto info = apps::histograms::run_hamr(env, staged,
                                           apps::histograms::Kind::kRatings);
    std::printf("%-18s %10.3f %10llu %14.3f\n",
                fc ? "flow control ON" : "flow control OFF", info.seconds,
                static_cast<unsigned long long>(
                    info.engine_result.flow_control_stalls),
                info.engine_result.flow_control_stall_seconds);
    std::fflush(stdout);
  }
  return 0;
}
