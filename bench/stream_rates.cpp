// stream_rates: streaming throughput and window-emission latency.
//
// Runs one bounded generator-replay stream per executor lane through the
// full pipeline (SourceFlowlet -> EventWindowFlowlet -> WindowFileSink) on a
// shared JobService, and reports:
//   * aggregate ingested events/sec across all lanes,
//   * p50/p99 window-emission latency (stream.window_emit_latency_us: time
//     from watermark barrier armed to the windows leaving the table),
//   * watermark lag and windows emitted.
// --metrics_json dumps the merged JobResult metric snapshots (the CI
// bench-smoke artifact); --trace writes Chrome trace_event JSON.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/flags.h"
#include "obs/metrics_snapshot.h"
#include "obs/trace.h"
#include "service/job_service.h"
#include "stream/source.h"
#include "stream/stream_service.h"
#include "stream/window.h"

using namespace hamr;

int main(int argc, char** argv) {
  Flags flags(argc, argv,
              "stream_rates - event-time streaming throughput/latency\n"
              "  --lanes=N       executor lanes / concurrent streams (2)\n"
              "  --nodes=N       cluster nodes (4)\n"
              "  --threads=N     worker threads per node (4)\n"
              "  --events=N      events per source split per stream (500000)\n"
              "  --window_ms=N   tumbling window size (50)\n"
              "  --keys=N        distinct user keys (64)\n"
              "  --rate=N        events/sec pacing per split, 0 = unpaced (0)\n"
              "  --trace=FILE    Chrome trace_event JSON\n"
              "  --metrics_json=FILE  merged metrics JSON ('-' = stdout)\n");
  const uint32_t lanes = static_cast<uint32_t>(flags.get_int("lanes", 2));
  const uint32_t nodes = static_cast<uint32_t>(flags.get_int("nodes", 4));
  const uint32_t threads = static_cast<uint32_t>(flags.get_int("threads", 4));
  const uint64_t events =
      static_cast<uint64_t>(flags.get_int("events", 500'000));
  const int64_t window_ms = flags.get_int("window_ms", 50);
  const uint64_t keys = static_cast<uint64_t>(flags.get_int("keys", 64));
  const double rate = flags.get_double("rate", 0);
  const std::string trace_path = flags.get_string("trace", "");
  const std::string metrics_path = flags.get_string("metrics_json", "");

  if (!trace_path.empty()) obs::trace().enable();

  cluster::Cluster cluster(cluster::ClusterConfig::fast(nodes, threads));
  service::ServiceConfig svc_cfg;
  svc_cfg.lanes = lanes;
  svc_cfg.engine = engine::EngineConfig::fast();
  service::JobService jobs(cluster, svc_cfg);
  stream::StreamService streams(jobs);

  std::printf("stream_rates: %u lanes x (%u nodes * %llu events), window %lld ms\n",
              lanes, nodes, static_cast<unsigned long long>(events),
              static_cast<long long>(window_ms));

  // One bounded replay per lane: each runs as a batch job over its finite
  // event set, so completion == every event ingested and every window
  // emitted (the throughput number includes full window flush).
  std::vector<std::shared_ptr<stream::StreamTicket>> tickets;
  Stopwatch sw;
  for (uint32_t lane = 0; lane < lanes; ++lane) {
    stream::GeneratorConfig gen;
    gen.total_events = events;
    gen.period_us = 1;  // dense event time: ~1000*window_ms events per window
    gen.jitter_us = 50;
    gen.seed = 1000 + lane;
    gen.events_per_sec = rate;
    gen.make = [keys](uint64_t i, std::string* key, std::string* value) {
      *key = "k" + std::to_string(i % keys);
      *value = "1";
    };
    stream::StreamPipeline p;
    p.source = [gen] { return std::make_unique<stream::GeneratorSource>(gen); };
    p.source_options.window.size_us = window_ms * 1000;
    p.source_options.events_per_chunk = 2048;
    p.source_options.punctuate_every = 8192;
    p.fold = [](std::string_view, std::string_view value, std::string& acc) {
      const uint64_t add = std::stoull(std::string(value));
      const uint64_t have = acc.empty() ? 0 : std::stoull(acc);
      acc = std::to_string(have + add);
    };
    p.output_dir = "stream_rates/lane" + std::to_string(lane);
    stream::StreamSpec spec;
    spec.job.tenant = "lane" + std::to_string(lane);
    spec.duration = Duration::zero();  // bounded replay
    tickets.push_back(streams.start(std::move(p), spec));
  }

  obs::MetricsSnapshot merged;
  uint64_t total_events = 0;
  uint64_t total_windows = 0;
  bool ok = true;
  for (auto& t : tickets) {
    const service::JobStatus st = t->wait(std::chrono::seconds(600));
    if (st != service::JobStatus::kDone) {
      std::fprintf(stderr, "stream %llu ended %s\n",
                   static_cast<unsigned long long>(t->id()),
                   service::to_string(st));
      ok = false;
      continue;
    }
    // Counts come from the per-stream stats: concurrent lanes share the
    // cluster's per-node metric registries, so each job's delta snapshot also
    // sees the other lanes' increments. The merged snapshot is still the
    // right artifact for histograms (every observation is real).
    const stream::StreamTicket::Progress p = t->poll();
    total_events += p.events_ingested;
    total_windows += p.windows_emitted;
    merged.merge_from(t->result().metrics);
  }
  const double wall = sw.elapsed_seconds();

  const double rate_meps = wall > 0 ? total_events / wall / 1e6 : 0;
  std::printf("\n%-28s %12s %12s\n", "Metric", "Value", "Unit");
  std::printf("%-28s %12.3f %12s\n", "wall time", wall, "s");
  std::printf("%-28s %12llu %12s\n", "events ingested",
              static_cast<unsigned long long>(total_events), "events");
  std::printf("%-28s %12.3f %12s\n", "aggregate throughput", rate_meps,
              "M events/s");
  std::printf("%-28s %12llu %12s\n", "windows emitted",
              static_cast<unsigned long long>(total_windows), "windows");
  if (const obs::HistogramSnapshot* h =
          merged.histogram("stream.window_emit_latency_us")) {
    std::printf("%-28s %12llu %12s\n", "window emit latency p50",
                static_cast<unsigned long long>(h->quantile(0.5)), "us");
    std::printf("%-28s %12llu %12s\n", "window emit latency p99",
                static_cast<unsigned long long>(h->quantile(0.99)), "us");
  }
  if (const obs::HistogramSnapshot* h =
          merged.histogram("stream.watermark_lag_us")) {
    std::printf("%-28s %12llu %12s\n", "watermark lag p99",
                static_cast<unsigned long long>(h->quantile(0.99)), "us");
  }

  if (!trace_path.empty()) {
    obs::TraceRecorder& tr = obs::trace();
    tr.disable();
    std::ofstream out(trace_path);
    out << tr.drain_to_json();
    std::printf("trace: wrote %s\n", trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    const std::string json = merged.to_json();
    if (metrics_path == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(metrics_path);
      out << json;
      std::printf("metrics: wrote %s\n", metrics_path.c_str());
    }
  }
  return ok ? 0 : 1;
}
